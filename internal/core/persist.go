package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"qaoaml/internal/graph"
	"qaoaml/internal/problem"
	"qaoaml/internal/qaoa"
)

// The dataset takes minutes to generate at paper scale but is a
// one-time cost (Sec. III-A); Save/Load let the CLI and downstream
// users generate once and retrain/re-evaluate cheaply.
//
// Two schema versions coexist. Version 1 (edge lists only) is what
// every MaxCut dataset ever written uses, and MaxCut datasets still
// write it byte-identically. Version 2 persists the full problem.Spec
// per instance — the tagged family union mirroring the qaoad wire
// schema — so qubo/maxksat/partition/portfolio/coloring datasets
// round-trip too. Load accepts both.

// dataFile is the JSON schema of a persisted dataset. Graphs is the v1
// instance payload, Specs the v2 one; exactly one is populated.
type dataFile struct {
	Version int            `json:"version"`
	Config  configFile     `json:"config"`
	Graphs  [][][2]int     `json:"graphs,omitempty"` // v1: edge lists, one per graph
	Nodes   int            `json:"nodes,omitempty"`
	Specs   []specFile     `json:"specs,omitempty"` // v2: full problem specs
	Records [][]recordFile `json:"records"`
}

type configFile struct {
	NumGraphs int     `json:"num_graphs"`
	Nodes     int     `json:"nodes"`
	EdgeProb  float64 `json:"edge_prob"`
	MaxDepth  int     `json:"max_depth"`
	Starts    int     `json:"starts"`
	Tol       float64 `json:"tol"`
	Seed      int64   `json:"seed"`
	Family    string  `json:"family,omitempty"`
}

type recordFile struct {
	GraphID int       `json:"graph_id"`
	Depth   int       `json:"depth"`
	Gamma   []float64 `json:"gamma"`
	Beta    []float64 `json:"beta"`
	NegF    float64   `json:"neg_f"`
	AR      float64   `json:"ar"`
	NFev    int       `json:"nfev"`
	MeanFev float64   `json:"mean_fev"`
}

// specFile is the v2 per-instance payload: one family tag plus that
// family's fields, mirroring the qaoad wire schema (internal/server's
// SolveRequest) field for field.
type specFile struct {
	Family  string    `json:"family"`
	Nodes   int       `json:"nodes,omitempty"`
	Edges   [][2]int  `json:"edges,omitempty"`
	Weights []float64 `json:"weights,omitempty"` // parallel to Edges; nil = unweighted

	// qubo
	Linear []float64      `json:"linear,omitempty"`
	Quad   []quadTermFile `json:"quad,omitempty"`
	Offset float64        `json:"offset,omitempty"`
	Sense  string         `json:"sense,omitempty"` // "min" or "max"
	Vars   int            `json:"vars,omitempty"`

	// maxksat
	Clauses       [][]int   `json:"clauses,omitempty"`
	ClauseWeights []float64 `json:"clause_weights,omitempty"`

	// partition
	Numbers []float64 `json:"numbers,omitempty"`

	// portfolio
	Returns      []float64   `json:"returns,omitempty"`
	Covariance   [][]float64 `json:"covariance,omitempty"`
	RiskAversion float64     `json:"risk_aversion,omitempty"`
	Budget       int         `json:"budget,omitempty"`
	Penalty      float64     `json:"penalty,omitempty"`

	// coloring
	Colors   int     `json:"colors,omitempty"`
	PenaltyA float64 `json:"penalty_a,omitempty"`
	PenaltyB float64 `json:"penalty_b,omitempty"`
}

type quadTermFile struct {
	I int     `json:"i"`
	J int     `json:"j"`
	W float64 `json:"w"`
}

const (
	dataFileVersion   = 1 // MaxCut: edge lists (every pre-v2 file)
	dataFileVersionV2 = 2 // any family: full problem specs
)

// Save serializes the dataset as JSON. MaxCut datasets keep writing
// schema v1 byte-identically (edge lists); every other family writes
// v2 with the full per-instance spec.
func (d *Data) Save(w io.Writer) error {
	if d.Config.Family != "" && d.Config.Family != problem.FamilyMaxCut {
		return d.saveV2(w)
	}
	df := dataFile{
		Version: dataFileVersion,
		Config: configFile{
			NumGraphs: d.Config.NumGraphs,
			Nodes:     d.Config.Nodes,
			EdgeProb:  d.Config.EdgeProb,
			MaxDepth:  d.Config.MaxDepth,
			Starts:    d.Config.Starts,
			Tol:       d.Config.Tol,
			Seed:      d.Config.Seed,
			Family:    d.Config.Family,
		},
		Nodes: d.Config.Nodes,
	}
	for _, pb := range d.Problems {
		var edges [][2]int
		for _, e := range pb.Graph.Edges() {
			edges = append(edges, [2]int{e.U, e.V})
		}
		df.Graphs = append(df.Graphs, edges)
	}
	for _, recs := range d.Records {
		var rf []recordFile
		for _, r := range recs {
			rf = append(rf, recordFile{
				GraphID: r.GraphID, Depth: r.Depth,
				Gamma: r.Params.Gamma, Beta: r.Params.Beta,
				NegF: r.NegF, AR: r.AR, NFev: r.NFev, MeanFev: r.MeanFev,
			})
		}
		df.Records = append(df.Records, rf)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(df)
}

// saveV2 serializes a non-MaxCut dataset: the same config and record
// layout as v1, with full problem specs in place of edge lists.
func (d *Data) saveV2(w io.Writer) error {
	df := dataFile{
		Version: dataFileVersionV2,
		Config: configFile{
			NumGraphs: d.Config.NumGraphs,
			Nodes:     d.Config.Nodes,
			EdgeProb:  d.Config.EdgeProb,
			MaxDepth:  d.Config.MaxDepth,
			Starts:    d.Config.Starts,
			Tol:       d.Config.Tol,
			Seed:      d.Config.Seed,
			Family:    d.Config.Family,
		},
	}
	for i, pb := range d.Problems {
		sf, err := encodeSpec(pb.Spec)
		if err != nil {
			return fmt.Errorf("core: instance %d: %w", i, err)
		}
		df.Specs = append(df.Specs, sf)
	}
	df.Records = encodeRecords(d.Records)
	return json.NewEncoder(w).Encode(df)
}

func encodeRecords(records [][]Record) [][]recordFile {
	var out [][]recordFile
	for _, recs := range records {
		var rf []recordFile
		for _, r := range recs {
			rf = append(rf, recordFile{
				GraphID: r.GraphID, Depth: r.Depth,
				Gamma: r.Params.Gamma, Beta: r.Params.Beta,
				NegF: r.NegF, AR: r.AR, NFev: r.NFev, MeanFev: r.MeanFev,
			})
		}
		out = append(out, rf)
	}
	return out
}

// encodeSpec lowers one problem.Spec to the tagged v2 union.
func encodeSpec(s problem.Spec) (specFile, error) {
	sf := specFile{Family: s.Family}
	switch s.Family {
	case problem.FamilyMaxCut, problem.FamilyColoring:
		if s.Graph == nil {
			return sf, fmt.Errorf("%s spec has no graph", s.Family)
		}
		sf.Nodes = s.Graph.N
		for _, e := range s.Graph.Edges() {
			sf.Edges = append(sf.Edges, [2]int{e.U, e.V})
		}
		if s.Graph.Weighted() {
			sf.Weights = s.Graph.Weights()
		}
		sf.Colors = s.Colors
		sf.PenaltyA = s.PenaltyA
		sf.PenaltyB = s.PenaltyB
	case problem.FamilyQUBO:
		if s.Inst == nil {
			return sf, fmt.Errorf("qubo spec has no instance")
		}
		sf.Nodes = s.Inst.N
		sf.Vars = s.Inst.Vars
		sf.Linear = s.Inst.Linear
		sf.Offset = s.Inst.Offset
		if s.Inst.Sense == problem.Maximize {
			sf.Sense = "max"
		} else {
			sf.Sense = "min"
		}
		for _, t := range s.Inst.Quad {
			sf.Quad = append(sf.Quad, quadTermFile{I: t.I, J: t.J, W: t.W})
		}
	case problem.FamilyMaxKSAT:
		if s.Formula == nil {
			return sf, fmt.Errorf("maxksat spec has no formula")
		}
		sf.Vars = s.Formula.Vars
		for _, cl := range s.Formula.Clauses {
			sf.Clauses = append(sf.Clauses, append([]int(nil), cl...))
		}
		sf.ClauseWeights = s.Formula.Weights
	case problem.FamilyPartition:
		sf.Numbers = s.Numbers
	case problem.FamilyPortfolio:
		if s.Port == nil {
			return sf, fmt.Errorf("portfolio spec has no payload")
		}
		sf.Returns = s.Port.Returns
		sf.Covariance = s.Port.Covariance
		sf.RiskAversion = s.Port.RiskAversion
		sf.Budget = s.Port.Budget
		sf.Penalty = s.Port.Penalty
	default:
		return sf, fmt.Errorf("unknown family %q", s.Family)
	}
	return sf, nil
}

// decodeSpec rebuilds the problem.Spec a v2 file carries.
func decodeSpec(sf specFile) (problem.Spec, error) {
	var zero problem.Spec
	switch sf.Family {
	case problem.FamilyMaxCut, problem.FamilyColoring:
		g := graph.New(sf.Nodes)
		for ei, e := range sf.Edges {
			w := 1.0
			if sf.Weights != nil {
				if ei >= len(sf.Weights) {
					return zero, fmt.Errorf("%d weights for %d edges", len(sf.Weights), len(sf.Edges))
				}
				w = sf.Weights[ei]
			}
			if err := g.AddWeightedEdge(e[0], e[1], w); err != nil {
				return zero, err
			}
		}
		if sf.Family == problem.FamilyMaxCut {
			return problem.MaxCut(g), nil
		}
		s := problem.Coloring(g, sf.Colors)
		s.PenaltyA = sf.PenaltyA
		s.PenaltyB = sf.PenaltyB
		return s, nil
	case problem.FamilyQUBO:
		sense := problem.Minimize
		if sf.Sense == "max" {
			sense = problem.Maximize
		}
		vars := sf.Vars
		if vars == 0 {
			vars = sf.Nodes
		}
		in := &problem.Instance{
			Family: problem.FamilyQUBO, Sense: sense,
			N: sf.Nodes, Vars: vars,
			Linear: sf.Linear, Offset: sf.Offset,
		}
		for _, t := range sf.Quad {
			in.Quad = append(in.Quad, problem.Term{I: t.I, J: t.J, W: t.W})
		}
		return problem.FromInstance(in), nil
	case problem.FamilyMaxKSAT:
		f := &problem.Formula{Vars: sf.Vars, Weights: sf.ClauseWeights}
		for _, cl := range sf.Clauses {
			f.Clauses = append(f.Clauses, problem.Clause(append([]int(nil), cl...)))
		}
		return problem.MaxKSAT(f), nil
	case problem.FamilyPartition:
		return problem.Partition(sf.Numbers), nil
	case problem.FamilyPortfolio:
		return problem.Portfolio(&problem.PortfolioSpec{
			Returns: sf.Returns, Covariance: sf.Covariance,
			RiskAversion: sf.RiskAversion, Budget: sf.Budget, Penalty: sf.Penalty,
		}), nil
	}
	return zero, fmt.Errorf("unknown family %q", sf.Family)
}

// SaveFile writes the dataset to path.
func (d *Data) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := d.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// Load deserializes a dataset previously written by Save (either
// schema version), rebuilding the per-instance cost structures and
// exact optima.
func Load(r io.Reader) (*Data, error) {
	var df dataFile
	if err := json.NewDecoder(r).Decode(&df); err != nil {
		return nil, fmt.Errorf("core: decoding dataset: %w", err)
	}
	if df.Version != dataFileVersion && df.Version != dataFileVersionV2 {
		return nil, fmt.Errorf("core: unsupported dataset version %d (want %d or %d)", df.Version, dataFileVersion, dataFileVersionV2)
	}
	d := &Data{
		Config: DataGenConfig{
			NumGraphs: df.Config.NumGraphs,
			Nodes:     df.Config.Nodes,
			EdgeProb:  df.Config.EdgeProb,
			MaxDepth:  df.Config.MaxDepth,
			Starts:    df.Config.Starts,
			Tol:       df.Config.Tol,
			Seed:      df.Config.Seed,
			Family:    df.Config.Family,
		},
	}
	// Pre-family datasets (version-1 files without the field) are MaxCut
	// by construction.
	if d.Config.Family == "" {
		d.Config.Family = problem.FamilyMaxCut
	}
	switch df.Version {
	case dataFileVersion:
		if len(df.Graphs) != len(df.Records) {
			return nil, fmt.Errorf("core: dataset has %d graphs but %d record rows", len(df.Graphs), len(df.Records))
		}
		for gi, edges := range df.Graphs {
			g := graph.New(df.Nodes)
			for _, e := range edges {
				if err := g.AddEdge(e[0], e[1]); err != nil {
					return nil, fmt.Errorf("core: dataset graph %d: %w", gi, err)
				}
			}
			pb, err := qaoa.NewProblem(g)
			if err != nil {
				return nil, fmt.Errorf("core: dataset graph %d: %w", gi, err)
			}
			d.Problems = append(d.Problems, pb)
		}
	case dataFileVersionV2:
		if len(df.Specs) != len(df.Records) {
			return nil, fmt.Errorf("core: dataset has %d specs but %d record rows", len(df.Specs), len(df.Records))
		}
		for si, sf := range df.Specs {
			spec, err := decodeSpec(sf)
			if err != nil {
				return nil, fmt.Errorf("core: dataset instance %d: %w", si, err)
			}
			pb, err := qaoa.New(spec)
			if err != nil {
				return nil, fmt.Errorf("core: dataset instance %d: %w", si, err)
			}
			d.Problems = append(d.Problems, pb)
		}
	}
	for gi, rf := range df.Records {
		if len(rf) != d.Config.MaxDepth {
			return nil, fmt.Errorf("core: graph %d has %d depth records, want %d", gi, len(rf), d.Config.MaxDepth)
		}
		var recs []Record
		for di, r := range rf {
			if r.Depth != di+1 || len(r.Gamma) != r.Depth || len(r.Beta) != r.Depth {
				return nil, fmt.Errorf("core: malformed record graph %d depth %d", gi, di+1)
			}
			recs = append(recs, Record{
				GraphID: r.GraphID, Depth: r.Depth,
				Params: qaoa.Params{Gamma: r.Gamma, Beta: r.Beta},
				NegF:   r.NegF, AR: r.AR, NFev: r.NFev, MeanFev: r.MeanFev,
			})
		}
		d.Records = append(d.Records, recs)
	}
	return d, nil
}

// LoadFile reads a dataset from path.
func LoadFile(path string) (*Data, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
