package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"qaoaml/internal/graph"
	"qaoaml/internal/problem"
	"qaoaml/internal/qaoa"
)

// The dataset takes minutes to generate at paper scale but is a
// one-time cost (Sec. III-A); Save/Load let the CLI and downstream
// users generate once and retrain/re-evaluate cheaply.

// dataFile is the JSON schema of a persisted dataset.
type dataFile struct {
	Version int            `json:"version"`
	Config  configFile     `json:"config"`
	Graphs  [][][2]int     `json:"graphs"` // edge lists, one per graph
	Nodes   int            `json:"nodes"`
	Records [][]recordFile `json:"records"`
}

type configFile struct {
	NumGraphs int     `json:"num_graphs"`
	Nodes     int     `json:"nodes"`
	EdgeProb  float64 `json:"edge_prob"`
	MaxDepth  int     `json:"max_depth"`
	Starts    int     `json:"starts"`
	Tol       float64 `json:"tol"`
	Seed      int64   `json:"seed"`
	Family    string  `json:"family,omitempty"`
}

type recordFile struct {
	GraphID int       `json:"graph_id"`
	Depth   int       `json:"depth"`
	Gamma   []float64 `json:"gamma"`
	Beta    []float64 `json:"beta"`
	NegF    float64   `json:"neg_f"`
	AR      float64   `json:"ar"`
	NFev    int       `json:"nfev"`
	MeanFev float64   `json:"mean_fev"`
}

const dataFileVersion = 1

// Save serializes the dataset as JSON. The edge-list schema only
// covers graph-backed datasets; non-MaxCut families regenerate their
// instances deterministically from (family, seed), so persisting the
// records with the config is a future schema version.
func (d *Data) Save(w io.Writer) error {
	if d.Config.Family != "" && d.Config.Family != problem.FamilyMaxCut {
		return fmt.Errorf("core: persisting %q datasets is not supported (schema v%d stores edge lists)", d.Config.Family, dataFileVersion)
	}
	df := dataFile{
		Version: dataFileVersion,
		Config: configFile{
			NumGraphs: d.Config.NumGraphs,
			Nodes:     d.Config.Nodes,
			EdgeProb:  d.Config.EdgeProb,
			MaxDepth:  d.Config.MaxDepth,
			Starts:    d.Config.Starts,
			Tol:       d.Config.Tol,
			Seed:      d.Config.Seed,
			Family:    d.Config.Family,
		},
		Nodes: d.Config.Nodes,
	}
	for _, pb := range d.Problems {
		var edges [][2]int
		for _, e := range pb.Graph.Edges() {
			edges = append(edges, [2]int{e.U, e.V})
		}
		df.Graphs = append(df.Graphs, edges)
	}
	for _, recs := range d.Records {
		var rf []recordFile
		for _, r := range recs {
			rf = append(rf, recordFile{
				GraphID: r.GraphID, Depth: r.Depth,
				Gamma: r.Params.Gamma, Beta: r.Params.Beta,
				NegF: r.NegF, AR: r.AR, NFev: r.NFev, MeanFev: r.MeanFev,
			})
		}
		df.Records = append(df.Records, rf)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(df)
}

// SaveFile writes the dataset to path.
func (d *Data) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := d.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// Load deserializes a dataset previously written by Save, rebuilding
// the per-graph cost tables and exact optima.
func Load(r io.Reader) (*Data, error) {
	var df dataFile
	if err := json.NewDecoder(r).Decode(&df); err != nil {
		return nil, fmt.Errorf("core: decoding dataset: %w", err)
	}
	if df.Version != dataFileVersion {
		return nil, fmt.Errorf("core: unsupported dataset version %d (want %d)", df.Version, dataFileVersion)
	}
	if len(df.Graphs) != len(df.Records) {
		return nil, fmt.Errorf("core: dataset has %d graphs but %d record rows", len(df.Graphs), len(df.Records))
	}
	d := &Data{
		Config: DataGenConfig{
			NumGraphs: df.Config.NumGraphs,
			Nodes:     df.Config.Nodes,
			EdgeProb:  df.Config.EdgeProb,
			MaxDepth:  df.Config.MaxDepth,
			Starts:    df.Config.Starts,
			Tol:       df.Config.Tol,
			Seed:      df.Config.Seed,
			Family:    df.Config.Family,
		},
	}
	// Pre-family datasets (version-1 files without the field) are MaxCut
	// by construction.
	if d.Config.Family == "" {
		d.Config.Family = problem.FamilyMaxCut
	}
	for gi, edges := range df.Graphs {
		g := graph.New(df.Nodes)
		for _, e := range edges {
			if err := g.AddEdge(e[0], e[1]); err != nil {
				return nil, fmt.Errorf("core: dataset graph %d: %w", gi, err)
			}
		}
		pb, err := qaoa.NewProblem(g)
		if err != nil {
			return nil, fmt.Errorf("core: dataset graph %d: %w", gi, err)
		}
		d.Problems = append(d.Problems, pb)
	}
	for gi, rf := range df.Records {
		if len(rf) != d.Config.MaxDepth {
			return nil, fmt.Errorf("core: graph %d has %d depth records, want %d", gi, len(rf), d.Config.MaxDepth)
		}
		var recs []Record
		for di, r := range rf {
			if r.Depth != di+1 || len(r.Gamma) != r.Depth || len(r.Beta) != r.Depth {
				return nil, fmt.Errorf("core: malformed record graph %d depth %d", gi, di+1)
			}
			recs = append(recs, Record{
				GraphID: r.GraphID, Depth: r.Depth,
				Params: qaoa.Params{Gamma: r.Gamma, Beta: r.Beta},
				NegF:   r.NegF, AR: r.AR, NFev: r.NFev, MeanFev: r.MeanFev,
			})
		}
		d.Records = append(d.Records, recs)
	}
	return d, nil
}

// LoadFile reads a dataset from path.
func LoadFile(path string) (*Data, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
