package core

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	data := testData(t)
	var buf bytes.Buffer
	if err := data.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Problems) != len(data.Problems) {
		t.Fatalf("graphs: %d != %d", len(loaded.Problems), len(data.Problems))
	}
	if loaded.Config != persistedConfig(data.Config) {
		t.Errorf("config mismatch: %+v vs %+v", loaded.Config, data.Config)
	}
	for g := range data.Problems {
		if loaded.Problems[g].Graph.String() != data.Problems[g].Graph.String() {
			t.Fatalf("graph %d differs after round trip", g)
		}
		if loaded.Problems[g].OptValue != data.Problems[g].OptValue {
			t.Fatalf("graph %d optimum differs", g)
		}
		for d := 1; d <= data.Config.MaxDepth; d++ {
			a, b := data.Record(g, d), loaded.Record(g, d)
			if a.NegF != b.NegF || a.AR != b.AR || a.NFev != b.NFev {
				t.Fatalf("record (%d, %d) differs: %+v vs %+v", g, d, a, b)
			}
			for i := range a.Params.Gamma {
				if a.Params.Gamma[i] != b.Params.Gamma[i] || a.Params.Beta[i] != b.Params.Beta[i] {
					t.Fatalf("params (%d, %d) differ", g, d)
				}
			}
		}
	}
	// A predictor trained on the loaded dataset behaves identically.
	train, _ := loaded.SplitIndices(0.5, 1)
	pred := NewPredictor(nil)
	if err := pred.Train(loaded, train); err != nil {
		t.Fatal(err)
	}
}

// persistedConfig strips the runtime-only fields (Optimizer, Workers,
// Recorder) that Save intentionally drops.
func persistedConfig(c DataGenConfig) DataGenConfig {
	c.Optimizer = nil
	c.Workers = 0
	c.Recorder = nil
	return c
}

func TestSaveLoadFile(t *testing.T) {
	data := testData(t)
	path := filepath.Join(t.TempDir(), "dataset.json")
	if err := data.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumParams() != data.NumParams() {
		t.Errorf("NumParams %d != %d", loaded.NumParams(), data.NumParams())
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Error("wrong version accepted")
	}
	if _, err := Load(strings.NewReader(`{"version": 1, "graphs": [[[0,1]]], "records": []}`)); err == nil {
		t.Error("mismatched graphs/records accepted")
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Error("missing file accepted")
	}
}
