package core

import (
	"context"
	"math/rand"
	"sync/atomic"
	"testing"

	"qaoaml/internal/graph"
	"qaoaml/internal/optimize"
	"qaoaml/internal/qaoa"
	"qaoaml/internal/telemetry"
)

// cancelAfterIters is a Recorder that cancels a context after seeing a
// fixed number of optimizer iteration events, and counts how many more
// arrive afterwards — a direct probe of "cancellation takes effect
// within one optimizer step".
type cancelAfterIters struct {
	telemetry.Nop
	cancel  context.CancelFunc
	trigger int64
	seen    atomic.Int64
	late    atomic.Int64
}

func (c *cancelAfterIters) Iteration(telemetry.IterEvent) {
	n := c.seen.Add(1)
	if n == c.trigger {
		c.cancel()
	} else if n > c.trigger {
		c.late.Add(1)
	}
}

// Cancelling mid-GenerateCtx stops within one optimizer step and still
// returns the fully completed records as a usable partial dataset.
func TestGenerateCtxCancelReturnsPartialData(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rec := &cancelAfterIters{cancel: cancel, trigger: 40}
	cfg := DataGenConfig{
		NumGraphs: 8, Nodes: 6, EdgeProb: 0.5, MaxDepth: 3,
		Starts: 4, Seed: 7, Workers: 1, Recorder: rec,
	}
	data, err := GenerateCtx(ctx, cfg)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Promptness: after the cancelling event, the in-flight run exits at
	// its next loop top without emitting, and later runs never start.
	if late := rec.late.Load(); late > 1 {
		t.Errorf("%d iteration events after cancellation", late)
	}
	// Partial data: fewer records than the full 8×3 sweep, and every
	// record that was kept is complete and in-domain.
	total := 0
	for g, recs := range data.Records {
		for d, r := range recs {
			if r.Depth != d+1 || r.GraphID != g || r.NFev <= 0 {
				t.Errorf("partial record malformed: %+v", r)
			}
			if err := r.Params.Validate(true); err != nil {
				t.Errorf("partial record out of domain: %v", err)
			}
			total++
		}
	}
	if total >= cfg.NumGraphs*cfg.MaxDepth {
		t.Errorf("cancelled sweep completed all %d records", total)
	}
}

// A completed GenerateCtx run reports nil error and full telemetry.
func TestGenerateCtxTelemetry(t *testing.T) {
	mem := telemetry.NewMemory()
	cfg := DataGenConfig{
		NumGraphs: 3, Nodes: 5, EdgeProb: 0.6, MaxDepth: 2,
		Starts: 2, Seed: 11, Recorder: mem,
	}
	data, err := GenerateCtx(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := mem.CounterValue("datagen.records"); got != 6 {
		t.Errorf("datagen.records = %d, want 6", got)
	}
	if got := mem.CounterValue("datagen.graphs_done"); got != 3 {
		t.Errorf("datagen.graphs_done = %d, want 3", got)
	}
	for d := 1; d <= 2; d++ {
		name := map[int]string{1: "datagen.fc.p1", 2: "datagen.fc.p2"}[d]
		h, ok := mem.HistogramSnapshot(name)
		if !ok || h.Count != 3 {
			t.Errorf("%s histogram: ok=%v count=%d", name, ok, h.Count)
		}
		wantSum := 0.0
		for g := 0; g < 3; g++ {
			wantSum += float64(data.Record(g, d).NFev)
		}
		if h.Sum != wantSum {
			t.Errorf("%s sum = %v, want %v", name, h.Sum, wantSum)
		}
	}
	if snap := mem.Snapshot(); snap.Spans["datagen.generate"].Count != 1 {
		t.Error("datagen.generate span not recorded")
	}
}

// GenerateCtx with a recorder stays bit-identical to plain Generate:
// observability must not perturb the numerics.
func TestGenerateCtxMatchesGenerate(t *testing.T) {
	cfg := DataGenConfig{NumGraphs: 4, Nodes: 5, EdgeProb: 0.6, MaxDepth: 2, Starts: 2, Seed: 3}
	plain, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Recorder = telemetry.NewMemory()
	traced, err := GenerateCtx(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for g := range plain.Records {
		for d := range plain.Records[g] {
			a, b := plain.Records[g][d], traced.Records[g][d]
			if a.NegF != b.NegF || a.NFev != b.NFev {
				t.Fatalf("recorder perturbed generation at graph %d depth %d", g, d+1)
			}
		}
	}
}

func TestNaiveRunCtxCancelled(t *testing.T) {
	data := testData(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := NaiveRunCtx(ctx, data.Problems[0], 2, &optimize.LBFGSB{}, rand.New(rand.NewSource(1)), nil)
	if err == nil {
		t.Fatal("cancelled NaiveRunCtx returned nil error")
	}
	if r.NFev > 1 {
		t.Errorf("pre-cancelled run spent %d evaluations", r.NFev)
	}
	if r.Params.Depth() != 2 {
		t.Errorf("partial result lost its shape: %+v", r)
	}
}

func TestTwoLevelCtxSpansAndCancellation(t *testing.T) {
	data := testData(t)
	train, test := data.SplitIndices(0.5, 1)
	pred := NewPredictor(nil)
	if err := pred.Train(data, train); err != nil {
		t.Fatal(err)
	}
	opt := &optimize.LBFGSB{Tol: 1e-6}
	pb := data.Problems[test[0]]

	// Full run: all three flow spans recorded, result matches TwoLevel.
	mem := telemetry.NewMemory()
	res, err := TwoLevelCtx(context.Background(), pb, 3, opt, pred, rand.New(rand.NewSource(3)), mem)
	if err != nil {
		t.Fatal(err)
	}
	want, err := TwoLevel(pb, 3, opt, pred, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalNFev != want.TotalNFev || res.AR() != want.AR() {
		t.Errorf("TwoLevelCtx diverged from TwoLevel: %d/%v vs %d/%v",
			res.TotalNFev, res.AR(), want.TotalNFev, want.AR())
	}
	snap := mem.Snapshot()
	for _, span := range []string{"twolevel.level1", "twolevel.predict", "twolevel.level2"} {
		if snap.Spans[span].Count != 1 {
			t.Errorf("span %s not recorded: %+v", span, snap.Spans[span])
		}
	}

	// Pre-cancelled: the flow stops after the level-1 probe with the
	// partial result and a non-nil error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	partial, err := TwoLevelCtx(ctx, pb, 3, opt, pred, rand.New(rand.NewSource(3)), nil)
	if err == nil {
		t.Fatal("cancelled TwoLevelCtx returned nil error")
	}
	if partial.TotalNFev > 1 || partial.Level2.NFev != 0 {
		t.Errorf("cancelled flow kept optimizing: %+v", partial)
	}
}

// The acceptance pin for the telemetry layer's overhead: with the
// no-op Recorder in the loop, the QAOA evaluation hot path — one
// NegExpectation call plus the per-iteration record/count/observe/span
// calls Run makes — stays at 0 allocs/op.
func TestNopRecorderZeroAllocEvalPath(t *testing.T) {
	gr := graph.ErdosRenyiConnected(8, 0.5, rand.New(rand.NewSource(1)))
	pb, err := qaoa.NewProblem(gr)
	if err != nil {
		t.Fatal(err)
	}
	ev := qaoa.NewEvaluator(pb, 3)
	x := ParamBounds(3).Random(rand.New(rand.NewSource(2)))
	rec := telemetry.OrNop(nil)
	iter := 0
	allocs := testing.AllocsPerRun(50, func() {
		f := ev.NegExpectation(x)
		rec.Iteration(telemetry.IterEvent{Source: "L-BFGS-B", Iter: iter, F: f, NFev: iter})
		rec.Count("optimize.fev_total", 1)
		rec.Observe("optimize.nfev", f)
		rec.Span("twolevel.level1")()
		iter++
	})
	if allocs != 0 {
		t.Errorf("eval hot path with Nop recorder allocates %v/op", allocs)
	}
}
