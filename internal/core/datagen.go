package core

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"qaoaml/internal/graph"
	"qaoaml/internal/optimize"
	"qaoaml/internal/problem"
	"qaoaml/internal/qaoa"
	"qaoaml/internal/telemetry"
)

// DataGenConfig describes the paper's dataset generation recipe
// (Sec. III-A): Erdős–Rényi graphs, depths 1..MaxDepth, multistart
// L-BFGS-B at tolerance 1e-6 restricted to β ∈ [0, π], γ ∈ [0, 2π].
type DataGenConfig struct {
	NumGraphs int                // graphs to draw (paper: 330)
	Nodes     int                // vertices per graph (paper: 8)
	EdgeProb  float64            // Erdős–Rényi edge probability (paper: 0.5)
	MaxDepth  int                // optimize depths 1..MaxDepth (paper: 6)
	Starts    int                // random multistarts per (graph, depth) (paper: 20)
	Tol       float64            // functional tolerance (paper: 1e-6)
	Seed      int64              // RNG seed for graphs and starts
	Workers   int                // parallel workers (default GOMAXPROCS)
	Optimizer optimize.Optimizer // default L-BFGS-B
	// Family selects the problem ensemble: problem.FamilyMaxCut (the
	// default, the paper's Erdős–Rényi MaxCut recipe, byte-identical to
	// the pre-family generator) or any other problem family, drawn by
	// problem.RandomSpec at roughly Nodes qubits per instance.
	Family string
	// Recorder receives datagen telemetry: graph/record counters, the
	// per-depth FC histograms "datagen.fc.p<d>", per-graph wall-time
	// observations and the overall "datagen.generate" span, plus the
	// per-iteration optimizer traces of every run. Shared across all
	// workers, so the sink must be thread-safe (default telemetry.Nop).
	Recorder telemetry.Recorder
}

// DefaultDataGenConfig returns a medium-scale configuration: the
// paper's recipe with a reduced graph count so it runs in seconds.
// Set NumGraphs to 330 for the full paper scale.
func DefaultDataGenConfig() DataGenConfig {
	return DataGenConfig{
		NumGraphs: 60,
		Nodes:     8,
		EdgeProb:  0.5,
		MaxDepth:  6,
		Starts:    20,
		Tol:       1e-6,
		Seed:      1,
	}
}

func (c *DataGenConfig) fillDefaults() error {
	if c.NumGraphs < 1 {
		return fmt.Errorf("core: NumGraphs %d < 1", c.NumGraphs)
	}
	if c.Nodes < 2 {
		return fmt.Errorf("core: Nodes %d < 2", c.Nodes)
	}
	if c.EdgeProb <= 0 || c.EdgeProb > 1 {
		return fmt.Errorf("core: EdgeProb %v out of (0,1]", c.EdgeProb)
	}
	if c.MaxDepth < 1 {
		return fmt.Errorf("core: MaxDepth %d < 1", c.MaxDepth)
	}
	if c.Starts < 1 {
		return fmt.Errorf("core: Starts %d < 1", c.Starts)
	}
	if c.Tol <= 0 {
		c.Tol = 1e-6
	}
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Optimizer == nil {
		c.Optimizer = &optimize.LBFGSB{Tol: c.Tol}
	}
	if c.Family == "" {
		c.Family = problem.FamilyMaxCut
	}
	known := false
	for _, f := range problem.Families() {
		if f == c.Family {
			known = true
		}
	}
	if !known {
		return fmt.Errorf("core: unknown problem family %q (want one of %v)", c.Family, problem.Families())
	}
	if c.Family != problem.FamilyMaxCut && c.Nodes < 4 {
		return fmt.Errorf("core: family %q needs Nodes >= 4, got %d", c.Family, c.Nodes)
	}
	c.Recorder = telemetry.OrNop(c.Recorder)
	return nil
}

// Record is one dataset row: the best parameters found for one
// (graph, depth) pair, with the cost of finding them.
type Record struct {
	GraphID int
	Depth   int
	Params  qaoa.Params // best over all starts
	NegF    float64     // objective at the optimum (−⟨C⟩)
	AR      float64     // approximation ratio at the optimum
	NFev    int         // total QC calls across all starts
	MeanFev float64     // mean QC calls per start
}

// Data is the generated optimal-parameter dataset.
type Data struct {
	Config   DataGenConfig
	Problems []*qaoa.Problem // indexed by graph id
	// Records[g][d-1] is the record for graph g at depth d.
	Records [][]Record
}

// Record returns the record for graph g at depth d (1-based depth).
func (d *Data) Record(g, depth int) Record { return d.Records[g][depth-1] }

// NumParams returns the total count of optimal scalar parameters in the
// dataset (the paper quotes 13,860 = 330 graphs · Σ_{p=1..6} 2p).
func (d *Data) NumParams() int {
	total := 0
	for _, recs := range d.Records {
		for _, r := range recs {
			total += 2 * r.Depth
		}
	}
	return total
}

// ParamBounds returns the paper's optimization domain for depth p:
// γi ∈ [0, 2π] then βi ∈ [0, π] in flat-vector order.
func ParamBounds(p int) *optimize.Bounds {
	lo := make([]float64, 2*p)
	hi := make([]float64, 2*p)
	for i := 0; i < p; i++ {
		hi[i] = qaoa.GammaMax
		hi[p+i] = qaoa.BetaMax
	}
	return optimize.NewBounds(lo, hi)
}

// OptimizeDepth finds the best depth-p parameters for a problem by
// multistart local optimization and returns a Record. Any seed params
// (e.g. the INTERP initialization from the previous depth) replace the
// same number of random starts, so the total start count is unchanged.
func OptimizeDepth(pb *qaoa.Problem, graphID, depth, starts int, opt optimize.Optimizer, rng *rand.Rand, seeds ...qaoa.Params) Record {
	rec, _ := OptimizeDepthCtx(context.Background(), pb, graphID, depth, starts, opt, rng, nil, seeds...)
	return rec
}

// OptimizeDepthCtx is OptimizeDepth with cancellation and telemetry:
// each start runs through optimize.Run with ctx and rec, so deadlines
// take effect within one optimizer step. On cancellation it returns the
// best-of-completed-starts record (zero Record if no start finished)
// together with ctx.Err(); the partially spent NFev is still counted.
func OptimizeDepthCtx(ctx context.Context, pb *qaoa.Problem, graphID, depth, starts int, opt optimize.Optimizer, rng *rand.Rand, rec telemetry.Recorder, seeds ...qaoa.Params) (Record, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ev := qaoa.NewEvaluator(pb, depth)
	bounds := ParamBounds(depth)
	points := make([][]float64, 0, starts)
	for _, s := range seeds {
		if len(points) == starts-1 && starts > 1 {
			break // always keep at least one random start
		}
		points = append(points, bounds.Clip(s.Vector()))
	}
	for len(points) < starts {
		points = append(points, bounds.Random(rng))
	}
	// Gradient-based optimizers take the adjoint path (Grad), so a
	// gradient costs one reverse sweep instead of 2n evaluations; the
	// batch evaluator stays wired up for optimizers that still probe
	// finite-difference stencils.
	be := qaoa.NewBatchEvaluator(pb, depth, 0)
	var best optimize.Result
	completed, totalNFev := 0, 0
	for _, x0 := range points {
		r := optimize.Run(ctx, optimize.Problem{F: ev.NegExpectation, Batch: be.EvalBatch, Grad: ev.NegGrad, X0: x0, Bounds: bounds},
			optimize.Options{Optimizer: opt, Recorder: rec})
		totalNFev += r.NFev
		if r.Status == optimize.Cancelled {
			break
		}
		if completed == 0 || r.F < best.F {
			best = r
		}
		completed++
	}
	if completed == 0 {
		return Record{GraphID: graphID, Depth: depth, NFev: totalNFev}, ctx.Err()
	}
	// Canonicalize so that symmetric copies of the optimum (the QAOA
	// landscape's β-period and conjugation symmetries) map to one
	// representative; without this the ML targets are inconsistent
	// across graphs and the parameter trends of Figs. 2-3 wash out.
	params := pb.Canonicalize(qaoa.FromVector(best.X))
	return Record{
		GraphID: graphID,
		Depth:   depth,
		Params:  params,
		NegF:    best.F,
		AR:      pb.ApproximationRatio(params),
		NFev:    totalNFev,
		MeanFev: float64(totalNFev) / float64(starts),
	}, ctx.Err()
}

// Generate produces the dataset: NumGraphs Erdős–Rényi graphs, each
// optimized at depths 1..MaxDepth from Starts random initializations.
// Graph sampling is deterministic in Seed; per-graph optimization runs
// use independent seeded RNGs so results are reproducible regardless of
// worker scheduling.
func Generate(cfg DataGenConfig) (*Data, error) {
	return GenerateCtx(context.Background(), cfg)
}

// GenerateCtx is Generate with cancellation: the context is threaded
// into every optimizer run, so a cancel or deadline takes effect within
// one optimizer step. On cancellation it returns the partial dataset —
// Records[g] holds the fully completed depths of graph g (possibly
// empty) — together with ctx.Err(), so long sweeps can checkpoint what
// they have. A nil error means the dataset is complete.
func GenerateCtx(ctx context.Context, cfg DataGenConfig) (*Data, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	endSpan := cfg.Recorder.Span("datagen.generate")
	defer endSpan()
	graphRNG := rand.New(rand.NewSource(cfg.Seed))
	problems := make([]*qaoa.Problem, cfg.NumGraphs)
	for g := 0; g < cfg.NumGraphs; g++ {
		// The MaxCut branch keeps the exact pre-family call sequence
		// (ErdosRenyiConnected with EdgeProb, then NewProblem), so legacy
		// configurations reproduce their datasets byte for byte; other
		// families draw from the per-family ensemble generators.
		var pb *qaoa.Problem
		var err error
		if cfg.Family == problem.FamilyMaxCut {
			gr := graph.ErdosRenyiConnected(cfg.Nodes, cfg.EdgeProb, graphRNG)
			pb, err = qaoa.NewProblem(gr)
		} else {
			var spec problem.Spec
			spec, err = problem.RandomSpec(cfg.Family, cfg.Nodes, graphRNG)
			if err == nil {
				pb, err = qaoa.New(spec)
			}
		}
		if err != nil {
			return nil, fmt.Errorf("core: %s instance %d: %w", cfg.Family, g, err)
		}
		problems[g] = pb
	}

	// Per-depth FC histogram names, precomputed so workers don't format
	// strings while recording.
	fcMetric := make([]string, cfg.MaxDepth+1)
	for d := 1; d <= cfg.MaxDepth; d++ {
		fcMetric[d] = fmt.Sprintf("datagen.fc.p%d", d)
	}

	records := make([][]Record, cfg.NumGraphs)
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Workers)
	for g := 0; g < cfg.NumGraphs; g++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(g int) {
			defer wg.Done()
			defer func() { <-sem }()
			start := time.Now()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(g)*7919 + 13))
			recs := make([]Record, 0, cfg.MaxDepth)
			for depth := 1; depth <= cfg.MaxDepth; depth++ {
				if ctx.Err() != nil {
					break
				}
				// Seed one start with the interpolated previous-depth
				// optimum (Zhou et al. INTERP) so best-of-starts lands in
				// the regular optimum family the paper's trends rely on.
				var seeds []qaoa.Params
				if depth > 1 {
					seeds = append(seeds, qaoa.Interpolate(recs[depth-2].Params))
				}
				rec, err := OptimizeDepthCtx(ctx, problems[g], g, depth, cfg.Starts, cfg.Optimizer, rng, cfg.Recorder, seeds...)
				if err != nil {
					break // cancelled mid-depth: drop the partial record
				}
				recs = append(recs, rec)
				cfg.Recorder.Count("datagen.records", 1)
				cfg.Recorder.Observe(fcMetric[depth], float64(rec.NFev))
			}
			records[g] = recs
			if len(recs) == cfg.MaxDepth {
				cfg.Recorder.Count("datagen.graphs_done", 1)
				cfg.Recorder.Observe("datagen.graph_ms", float64(time.Since(start).Nanoseconds())/1e6)
			}
		}(g)
	}
	wg.Wait()
	return &Data{Config: cfg, Problems: problems, Records: records}, ctx.Err()
}

// SplitIndices deterministically shuffles graph ids and splits them
// into train/test id sets with the given train fraction (paper: 0.2).
func (d *Data) SplitIndices(trainFrac float64, seed int64) (train, test []int) {
	if trainFrac <= 0 || trainFrac >= 1 {
		panic(fmt.Sprintf("core: train fraction %v out of (0,1)", trainFrac))
	}
	n := len(d.Problems)
	idx := rand.New(rand.NewSource(seed)).Perm(n)
	nTrain := int(float64(n)*trainFrac + 0.5)
	if nTrain < 1 {
		nTrain = 1
	}
	if nTrain > n-1 {
		nTrain = n - 1
	}
	return idx[:nTrain], idx[nTrain:]
}
