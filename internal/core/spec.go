package core

import (
	"context"
	"math/rand"

	"qaoaml/internal/optimize"
	"qaoaml/internal/problem"
	"qaoaml/internal/qaoa"
	"qaoaml/internal/telemetry"
)

// Spec-level entry points: every optimization flow in this package
// accepts a problem.Spec and compiles it once through qaoa.New. MaxCut
// specs route to the legacy graph path inside qaoa.New, so these
// wrappers are bit-identical to calling the *qaoa.Problem variants on
// NewProblem output.

// OptimizeDepthSpec is OptimizeDepthCtx over a problem spec.
func OptimizeDepthSpec(ctx context.Context, spec problem.Spec, graphID, depth, starts int, opt optimize.Optimizer, rng *rand.Rand, rec telemetry.Recorder, seeds ...qaoa.Params) (Record, error) {
	pb, err := qaoa.New(spec)
	if err != nil {
		return Record{}, err
	}
	return OptimizeDepthCtx(ctx, pb, graphID, depth, starts, opt, rng, rec, seeds...)
}

// NaiveRunSpec is NaiveRunCtx over a problem spec (the baseline flow
// for any family).
func NaiveRunSpec(ctx context.Context, spec problem.Spec, pt int, opt optimize.Optimizer, rng *rand.Rand, rec telemetry.Recorder) (RunResult, error) {
	pb, err := qaoa.New(spec)
	if err != nil {
		return RunResult{}, err
	}
	return NaiveRunCtx(ctx, pb, pt, opt, rng, rec)
}

// TwoLevelSpec is TwoLevelCtx over a problem spec (the paper's Fig. 4
// flow for any family).
func TwoLevelSpec(ctx context.Context, spec problem.Spec, pt int, opt optimize.Optimizer, pred *Predictor, rng *rand.Rand, rec telemetry.Recorder) (TwoLevelResult, error) {
	pb, err := qaoa.New(spec)
	if err != nil {
		return TwoLevelResult{}, err
	}
	return TwoLevelCtx(ctx, pb, pt, opt, pred, rng, rec)
}
