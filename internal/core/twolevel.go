package core

import (
	"context"
	"fmt"
	"math/rand"

	"qaoaml/internal/optimize"
	"qaoaml/internal/qaoa"
	"qaoaml/internal/telemetry"
)

// RunResult is the outcome of one QAOA optimization run (one random or
// predicted initialization followed to convergence).
type RunResult struct {
	Params qaoa.Params
	AR     float64
	NFev   int // QC calls for this run
}

// NaiveRun solves the depth-pt instance from one random initialization
// (the paper's baseline QCR flow, Fig. 1(a)).
func NaiveRun(pb *qaoa.Problem, pt int, opt optimize.Optimizer, rng *rand.Rand) RunResult {
	r, _ := NaiveRunCtx(context.Background(), pb, pt, opt, rng, nil)
	return r
}

// NaiveRunCtx is NaiveRun with cancellation and telemetry. On
// cancellation it returns the optimizer's incumbent (canonicalized)
// with ctx.Err(), so the partial result is still usable.
func NaiveRunCtx(ctx context.Context, pb *qaoa.Problem, pt int, opt optimize.Optimizer, rng *rand.Rand, rec telemetry.Recorder) (RunResult, error) {
	return NaiveRunArena(ctx, nil, pb, pt, opt, rng, rec)
}

// NaiveRunArena is NaiveRunCtx drawing every evaluation workspace's
// state buffers from the arena (nil behaves like NaiveRunCtx), so a
// serving loop reuses its 2^n vectors across runs instead of
// reallocating per request. Results are bit-identical to NaiveRunCtx:
// the arena only changes where buffers come from, never what the
// kernels compute.
func NaiveRunArena(ctx context.Context, arena *qaoa.Arena, pb *qaoa.Problem, pt int, opt optimize.Optimizer, rng *rand.Rand, rec telemetry.Recorder) (RunResult, error) {
	ev := qaoa.NewEvaluatorArena(pb, pt, arena)
	defer ev.Release()
	bounds := ParamBounds(pt)
	be := qaoa.NewBatchEvaluatorArena(pb, pt, 0, arena)
	defer be.Release()
	r := optimize.Run(ctx, optimize.Problem{F: ev.NegExpectation, Batch: be.EvalBatch, Grad: ev.NegGrad, X0: bounds.Random(rng), Bounds: bounds},
		optimize.Options{Optimizer: opt, Recorder: rec})
	// Canonical form keeps downstream feature extraction consistent
	// with the (canonicalized) training dataset.
	params := pb.Canonicalize(qaoa.FromVector(r.X))
	var err error
	if r.Status == optimize.Cancelled {
		err = ctx.Err()
	}
	return RunResult{Params: params, AR: ev.ApproximationRatio(params), NFev: r.NFev}, err
}

// TwoLevelResult is the outcome of the paper's Fig. 4 flow: the depth-1
// optimization cost plus the ML-initialized target-depth cost.
type TwoLevelResult struct {
	Level1    RunResult   // depth-1 optimization from a random start
	Predicted qaoa.Params // ML-predicted target-depth initialization
	Level2    RunResult   // target-depth optimization from Predicted
	TotalNFev int         // Level1.NFev + Level2.NFev (the paper's FC)
}

// AR returns the final approximation ratio (of the level-2 solution).
func (t TwoLevelResult) AR() float64 { return t.Level2.AR }

// TwoLevel runs the two-level flow of Fig. 4 on one problem:
//
//	level 1: optimize the p = 1 instance from a random initialization;
//	level 2: predict the 2·pt target-depth parameters from
//	         (γ1OPT(p=1), β1OPT(p=1), pt) and finish with the local
//	         optimizer from that initialization.
//
// The returned TotalNFev counts both levels, as the paper does.
func TwoLevel(pb *qaoa.Problem, pt int, opt optimize.Optimizer, pred *Predictor, rng *rand.Rand) (TwoLevelResult, error) {
	return TwoLevelCtx(context.Background(), pb, pt, opt, pred, rng, nil)
}

// TwoLevelCtx is TwoLevel with cancellation and telemetry. Each stage
// runs under a flow span ("twolevel.level1", "twolevel.predict",
// "twolevel.level2") on rec, and the context is threaded into both
// optimizer runs so a cancel or deadline takes effect within one
// optimizer step. On cancellation it returns the stages completed so
// far — Level1 alone, or Level1 plus the level-2 incumbent — together
// with ctx.Err(); TotalNFev always counts the QC calls actually spent.
func TwoLevelCtx(ctx context.Context, pb *qaoa.Problem, pt int, opt optimize.Optimizer, pred *Predictor, rng *rand.Rand, rec telemetry.Recorder) (TwoLevelResult, error) {
	return TwoLevelArena(ctx, nil, pb, pt, opt, pred, rng, rec)
}

// TwoLevelArena is TwoLevelCtx drawing every evaluation workspace's
// state buffers from the arena (nil behaves like TwoLevelCtx); see
// NaiveRunArena. Both levels share the arena — the depth-1 and
// depth-pt workspaces are the same register width, so level 2 reuses
// level 1's buffers.
func TwoLevelArena(ctx context.Context, arena *qaoa.Arena, pb *qaoa.Problem, pt int, opt optimize.Optimizer, pred *Predictor, rng *rand.Rand, rec telemetry.Recorder) (TwoLevelResult, error) {
	if pt < 2 {
		return TwoLevelResult{}, fmt.Errorf("core: two-level target depth %d < 2", pt)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	r := telemetry.OrNop(rec)

	end := r.Span("twolevel.level1")
	level1, err := NaiveRunArena(ctx, arena, pb, 1, opt, rng, r)
	end()
	if err != nil {
		return TwoLevelResult{Level1: level1, TotalNFev: level1.NFev}, err
	}

	end = r.Span("twolevel.predict")
	init, err := pred.Predict(FeaturesFromParams(level1.Params, pt))
	end()
	if err != nil {
		return TwoLevelResult{Level1: level1, TotalNFev: level1.NFev}, err
	}

	end = r.Span("twolevel.level2")
	ev := qaoa.NewEvaluatorArena(pb, pt, arena)
	defer ev.Release()
	bounds := ParamBounds(pt)
	be := qaoa.NewBatchEvaluatorArena(pb, pt, 0, arena)
	defer be.Release()
	res := optimize.Run(ctx, optimize.Problem{F: ev.NegExpectation, Batch: be.EvalBatch, Grad: ev.NegGrad, X0: init.Vector(), Bounds: bounds},
		optimize.Options{Optimizer: opt, Recorder: r})
	end()
	params := pb.Canonicalize(qaoa.FromVector(res.X))
	level2 := RunResult{Params: params, AR: ev.ApproximationRatio(params), NFev: res.NFev}
	out := TwoLevelResult{
		Level1:    level1,
		Predicted: init,
		Level2:    level2,
		TotalNFev: level1.NFev + level2.NFev,
	}
	if res.Status == optimize.Cancelled {
		return out, ctx.Err()
	}
	return out, nil
}

// HierarchicalResult is the outcome of the hierarchical flow: depth-1,
// then an ML-initialized depth-2 refinement, then the ML-initialized
// target depth using both optima as features.
type HierarchicalResult struct {
	Level1    RunResult
	Level2    RunResult   // depth-2 refinement (ML-initialized)
	Predicted qaoa.Params // target-depth initialization
	Level3    RunResult   // target-depth optimization
	TotalNFev int
}

// AR returns the final approximation ratio.
func (h HierarchicalResult) AR() float64 { return h.Level3.AR }

// Hierarchical runs the Sec. I(d) hierarchical variant for pt ≥ 3:
// the intermediate depth-2 instance is itself ML-initialized (via the
// two-level predictor), and its optimum joins the depth-1 optimum as
// features for the hierarchical predictor of the target depth.
func Hierarchical(pb *qaoa.Problem, pt int, opt optimize.Optimizer, pred *Predictor, hpred *HierPredictor, rng *rand.Rand) (HierarchicalResult, error) {
	if pt < 3 {
		return HierarchicalResult{}, fmt.Errorf("core: hierarchical target depth %d < 3", pt)
	}
	level1 := NaiveRun(pb, 1, opt, rng)

	// Intermediate stage: depth 2 with two-level initialization.
	init2, err := pred.Predict(FeaturesFromParams(level1.Params, 2))
	if err != nil {
		return HierarchicalResult{}, err
	}
	ev2 := qaoa.NewEvaluator(pb, 2)
	be2 := qaoa.NewBatchEvaluator(pb, 2, 0)
	r2 := optimize.Run(context.Background(),
		optimize.Problem{F: ev2.NegExpectation, Batch: be2.EvalBatch, Grad: ev2.NegGrad, X0: init2.Vector(), Bounds: ParamBounds(2)},
		optimize.Options{Optimizer: opt})
	p2 := pb.Canonicalize(qaoa.FromVector(r2.X))
	level2 := RunResult{Params: p2, AR: pb.ApproximationRatio(p2), NFev: r2.NFev}

	// Target stage with hierarchical features.
	initT, err := hpred.Predict(HierFeaturesFromParams(level1.Params, p2, pt))
	if err != nil {
		return HierarchicalResult{}, err
	}
	evT := qaoa.NewEvaluator(pb, pt)
	beT := qaoa.NewBatchEvaluator(pb, pt, 0)
	rT := optimize.Run(context.Background(),
		optimize.Problem{F: evT.NegExpectation, Batch: beT.EvalBatch, Grad: evT.NegGrad, X0: initT.Vector(), Bounds: ParamBounds(pt)},
		optimize.Options{Optimizer: opt})
	pT := pb.Canonicalize(qaoa.FromVector(rT.X))
	level3 := RunResult{Params: pT, AR: pb.ApproximationRatio(pT), NFev: rT.NFev}

	return HierarchicalResult{
		Level1:    level1,
		Level2:    level2,
		Predicted: initT,
		Level3:    level3,
		TotalNFev: level1.NFev + level2.NFev + level3.NFev,
	}, nil
}
