package core

import (
	"context"
	"math/rand"
	"testing"

	"qaoaml/internal/optimize"
	"qaoaml/internal/problem"
	"qaoaml/internal/qaoa"
)

// Datagen over non-MaxCut families: the ensemble generator must
// produce optimizable instances, records must carry normalized ARs in
// [0, 1], and the family-aware training set must assemble with the
// 4-wide feature rows.
func TestGenerateFamilyEnsembles(t *testing.T) {
	for _, fam := range []string{problem.FamilyQUBO, problem.FamilyPartition} {
		cfg := DataGenConfig{
			NumGraphs: 3,
			Nodes:     6,
			EdgeProb:  0.5,
			MaxDepth:  2,
			Starts:    2,
			Seed:      11,
			Family:    fam,
			Optimizer: &optimize.LBFGSB{Tol: 1e-4, MaxIter: 40},
		}
		data, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		for g, recs := range data.Records {
			if len(recs) != cfg.MaxDepth {
				t.Fatalf("%s: instance %d has %d records, want %d", fam, g, len(recs), cfg.MaxDepth)
			}
			for _, r := range recs {
				if r.AR < -1e-12 || r.AR > 1+1e-12 {
					t.Errorf("%s: instance %d depth %d AR %v out of [0, 1]", fam, g, r.Depth, r.AR)
				}
			}
		}
		ds, err := FamilyTrainingSet(data, []int{0, 1, 2}, 2)
		if err != nil {
			t.Fatalf("%s: training set: %v", fam, err)
		}
		if len(ds.X) != 3 || len(ds.X[0]) != 4 {
			t.Fatalf("%s: training set shape %dx%d, want 3x4", fam, len(ds.X), len(ds.X[0]))
		}
		if code := ds.X[0][3]; code != FamilyCode(fam) {
			t.Errorf("%s: family code column %v != %v", fam, code, FamilyCode(fam))
		}
	}
}

// Family determinism: same (family, seed) must regenerate the same
// instances — the contract that lets non-MaxCut datasets skip
// persistence.
func TestGenerateFamilyDeterministic(t *testing.T) {
	cfg := DataGenConfig{
		NumGraphs: 2, Nodes: 6, EdgeProb: 0.5, MaxDepth: 1, Starts: 1, Seed: 5,
		Family:    problem.FamilyQUBO,
		Optimizer: &optimize.LBFGSB{Tol: 1e-4, MaxIter: 20},
	}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for g := range a.Problems {
		fa, fb := a.Problems[g].Inst.Fingerprint(), b.Problems[g].Inst.Fingerprint()
		if fa != fb {
			t.Errorf("instance %d fingerprint differs across identical configs", g)
		}
		if a.Record(g, 1).NegF != b.Record(g, 1).NegF {
			t.Errorf("instance %d optimum differs across identical configs", g)
		}
	}
}

// The spec entry points must be bit-identical to the direct problem
// variants for MaxCut (same construction path inside qaoa.New).
func TestSpecEntryPointsMatchDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	spec, err := problem.RandomSpec(problem.FamilyMaxCut, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	opt := &optimize.LBFGSB{Tol: 1e-6}
	pb, err := qaoa.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := NaiveRunCtx(context.Background(), pb, 2, opt, rand.New(rand.NewSource(3)), nil)
	if err != nil {
		t.Fatal(err)
	}
	viaSpec, err := NaiveRunSpec(context.Background(), spec, 2, opt, rand.New(rand.NewSource(3)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if direct.AR != viaSpec.AR || direct.NFev != viaSpec.NFev {
		t.Errorf("spec entry point diverges: AR %v vs %v, NFev %d vs %d",
			viaSpec.AR, direct.AR, viaSpec.NFev, direct.NFev)
	}
}
