package core

import (
	"math"
	"math/rand"
	"testing"

	"qaoaml/internal/ml"
	"qaoaml/internal/optimize"
	"qaoaml/internal/qaoa"
	"qaoaml/internal/stats"
)

// testData generates a small deterministic dataset shared by the tests.
func testData(t testing.TB) *Data {
	t.Helper()
	cfg := DataGenConfig{
		NumGraphs: 16,
		Nodes:     6,
		EdgeProb:  0.5,
		MaxDepth:  3,
		Starts:    4,
		Tol:       1e-6,
		Seed:      7,
	}
	data, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestFeaturesVector(t *testing.T) {
	p1 := qaoa.Params{Gamma: []float64{1.5}, Beta: []float64{0.4}}
	f := FeaturesFromParams(p1, 4)
	v := f.Vector()
	if len(v) != 3 || v[0] != 1.5 || v[1] != 0.4 || v[2] != 4 {
		t.Errorf("Vector = %v", v)
	}
}

func TestFeaturesValidation(t *testing.T) {
	p2 := qaoa.NewParams(2)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("depth-2 params accepted as features")
			}
		}()
		FeaturesFromParams(p2, 3)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("target depth 1 accepted")
			}
		}()
		FeaturesFromParams(qaoa.NewParams(1), 1)
	}()
}

func TestHierFeaturesVector(t *testing.T) {
	p1 := qaoa.Params{Gamma: []float64{1}, Beta: []float64{2}}
	p2 := qaoa.Params{Gamma: []float64{3, 4}, Beta: []float64{5, 6}}
	f := HierFeaturesFromParams(p1, p2, 5)
	v := f.Vector()
	want := []float64{1, 2, 3, 4, 5, 6, 5}
	if len(v) != len(want) {
		t.Fatalf("Vector = %v", v)
	}
	for i := range v {
		if v[i] != want[i] {
			t.Fatalf("Vector = %v, want %v", v, want)
		}
	}
}

func TestParamBounds(t *testing.T) {
	b := ParamBounds(3)
	if b.Dim() != 6 {
		t.Fatalf("Dim = %d", b.Dim())
	}
	for i := 0; i < 3; i++ {
		if b.Lo[i] != 0 || math.Abs(b.Hi[i]-qaoa.GammaMax) > 1e-15 {
			t.Errorf("gamma bounds[%d] = [%v, %v]", i, b.Lo[i], b.Hi[i])
		}
		if b.Lo[3+i] != 0 || math.Abs(b.Hi[3+i]-qaoa.BetaMax) > 1e-15 {
			t.Errorf("beta bounds[%d] = [%v, %v]", i, b.Lo[3+i], b.Hi[3+i])
		}
	}
}

func TestGenerateShapeAndDeterminism(t *testing.T) {
	data := testData(t)
	if len(data.Problems) != 16 || len(data.Records) != 16 {
		t.Fatalf("sizes = %d/%d", len(data.Problems), len(data.Records))
	}
	for g, recs := range data.Records {
		if len(recs) != 3 {
			t.Fatalf("graph %d has %d depth records", g, len(recs))
		}
		for d, r := range recs {
			if r.Depth != d+1 || r.GraphID != g {
				t.Fatalf("record indexing wrong: %+v", r)
			}
			if r.AR <= 0 || r.AR > 1+1e-9 {
				t.Errorf("graph %d depth %d AR = %v", g, d+1, r.AR)
			}
			if r.NFev <= 0 {
				t.Errorf("graph %d depth %d NFev = %d", g, d+1, r.NFev)
			}
			if err := r.Params.Validate(true); err != nil {
				t.Errorf("graph %d depth %d params out of domain: %v", g, d+1, err)
			}
		}
	}
	// NumParams = graphs · Σ 2p = 16 · (2+4+6) = 192.
	if got := data.NumParams(); got != 192 {
		t.Errorf("NumParams = %d, want 192", got)
	}
	// Determinism.
	data2 := testData(t)
	for g := range data.Records {
		for d := range data.Records[g] {
			a, b := data.Records[g][d], data2.Records[g][d]
			if a.NegF != b.NegF || a.NFev != b.NFev {
				t.Fatalf("non-deterministic generation at graph %d depth %d", g, d+1)
			}
		}
	}
}

func TestGenerateValidatesConfig(t *testing.T) {
	bad := []DataGenConfig{
		{NumGraphs: 0, Nodes: 6, EdgeProb: 0.5, MaxDepth: 2, Starts: 1},
		{NumGraphs: 1, Nodes: 1, EdgeProb: 0.5, MaxDepth: 2, Starts: 1},
		{NumGraphs: 1, Nodes: 6, EdgeProb: 0, MaxDepth: 2, Starts: 1},
		{NumGraphs: 1, Nodes: 6, EdgeProb: 0.5, MaxDepth: 0, Starts: 1},
		{NumGraphs: 1, Nodes: 6, EdgeProb: 0.5, MaxDepth: 2, Starts: 0},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestDeeperIsNotWorse(t *testing.T) {
	// Multistart optima should (weakly) improve with depth on most
	// graphs; assert the dataset-wide mean AR is monotone.
	data := testData(t)
	means := make([]float64, 3)
	for _, recs := range data.Records {
		for d, r := range recs {
			means[d] += r.AR / float64(len(data.Records))
		}
	}
	if means[1] < means[0]-0.01 || means[2] < means[1]-0.01 {
		t.Errorf("mean AR not improving with depth: %v", means)
	}
}

func TestSplitIndices(t *testing.T) {
	data := testData(t)
	train, test := data.SplitIndices(0.25, 3)
	if len(train) != 4 || len(test) != 12 {
		t.Fatalf("split = %d/%d", len(train), len(test))
	}
	seen := map[int]bool{}
	for _, id := range append(append([]int{}, train...), test...) {
		if seen[id] {
			t.Fatal("duplicate id in split")
		}
		seen[id] = true
	}
	if len(seen) != 16 {
		t.Errorf("ids lost: %d", len(seen))
	}
}

func TestPredictorTrainPredict(t *testing.T) {
	data := testData(t)
	train, test := data.SplitIndices(0.5, 1)
	pred := NewPredictor(nil)
	if err := pred.Train(data, train); err != nil {
		t.Fatal(err)
	}
	depths := pred.TargetDepths()
	if len(depths) != 2 || depths[0] != 2 || depths[1] != 3 {
		t.Fatalf("TargetDepths = %v", depths)
	}
	// Predictions stay in domain and are not absurdly far from truth.
	for _, g := range test {
		p1 := data.Record(g, 1).Params
		for _, pt := range depths {
			got, err := pred.Predict(FeaturesFromParams(p1, pt))
			if err != nil {
				t.Fatal(err)
			}
			if got.Depth() != pt {
				t.Fatalf("predicted depth %d, want %d", got.Depth(), pt)
			}
			if err := got.Validate(true); err != nil {
				t.Errorf("prediction out of domain: %v", err)
			}
		}
	}
}

func TestPredictorUnknownDepth(t *testing.T) {
	data := testData(t)
	train, _ := data.SplitIndices(0.5, 1)
	pred := NewPredictor(nil)
	if err := pred.Train(data, train); err != nil {
		t.Fatal(err)
	}
	if _, err := pred.Predict(Features{Gamma1: 1, Beta1: 1, TargetDepth: 9}); err == nil {
		t.Error("prediction for untrained depth accepted")
	}
}

func TestPredictorRequiresDepth2(t *testing.T) {
	cfg := DataGenConfig{NumGraphs: 2, Nodes: 4, EdgeProb: 0.9, MaxDepth: 1, Starts: 1, Seed: 1}
	data, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := NewPredictor(nil).Train(data, []int{0, 1}); err == nil {
		t.Error("training on depth-1-only data accepted")
	}
}

func TestNaiveRun(t *testing.T) {
	data := testData(t)
	rng := rand.New(rand.NewSource(2))
	opt := &optimize.LBFGSB{Tol: 1e-6}
	r := NaiveRun(data.Problems[0], 2, opt, rng)
	if r.NFev <= 0 || r.AR <= 0 || r.AR > 1+1e-9 {
		t.Errorf("NaiveRun = %+v", r)
	}
	if r.Params.Depth() != 2 {
		t.Errorf("depth = %d", r.Params.Depth())
	}
}

func TestTwoLevelFlow(t *testing.T) {
	data := testData(t)
	train, test := data.SplitIndices(0.5, 1)
	pred := NewPredictor(nil)
	if err := pred.Train(data, train); err != nil {
		t.Fatal(err)
	}
	opt := &optimize.LBFGSB{Tol: 1e-6}
	rng := rand.New(rand.NewSource(3))
	pb := data.Problems[test[0]]
	res, err := TwoLevel(pb, 3, opt, pred, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalNFev != res.Level1.NFev+res.Level2.NFev {
		t.Error("TotalNFev mismatch")
	}
	if res.Level1.Params.Depth() != 1 || res.Level2.Params.Depth() != 3 {
		t.Error("level depths wrong")
	}
	if res.AR() <= 0 || res.AR() > 1+1e-9 {
		t.Errorf("AR = %v", res.AR())
	}
	if err := res.Predicted.Validate(true); err != nil {
		t.Errorf("predicted init out of domain: %v", err)
	}
	if _, err := TwoLevel(pb, 1, opt, pred, rng); err == nil {
		t.Error("target depth 1 accepted")
	}
}

// The headline claim, at test scale: averaged over test graphs, the
// two-level flow spends fewer QC calls than the naive flow at the same
// depth while matching AR.
func TestTwoLevelReducesFunctionCalls(t *testing.T) {
	data := testData(t)
	train, test := data.SplitIndices(0.5, 1)
	pred := NewPredictor(nil)
	if err := pred.Train(data, train); err != nil {
		t.Fatal(err)
	}
	opt := &optimize.LBFGSB{Tol: 1e-6}
	const pt = 3
	var naiveFC, twoFC, naiveAR, twoAR float64
	runs := 0
	for _, g := range test {
		pb := data.Problems[g]
		rng := rand.New(rand.NewSource(int64(100 + g)))
		for rep := 0; rep < 3; rep++ {
			nv := NaiveRun(pb, pt, opt, rng)
			tl, err := TwoLevel(pb, pt, opt, pred, rng)
			if err != nil {
				t.Fatal(err)
			}
			naiveFC += float64(nv.NFev)
			twoFC += float64(tl.TotalNFev)
			naiveAR += nv.AR
			twoAR += tl.AR()
			runs++
		}
	}
	naiveFC /= float64(runs)
	twoFC /= float64(runs)
	naiveAR /= float64(runs)
	twoAR /= float64(runs)
	t.Logf("naive FC=%.1f AR=%.4f | two-level FC=%.1f AR=%.4f (reduction %.1f%%)",
		naiveFC, naiveAR, twoFC, twoAR, 100*(1-twoFC/naiveFC))
	if twoFC >= naiveFC {
		t.Errorf("two-level FC %.1f >= naive FC %.1f", twoFC, naiveFC)
	}
	if twoAR < naiveAR-0.03 {
		t.Errorf("two-level AR %.4f much worse than naive %.4f", twoAR, naiveAR)
	}
}

func TestHierarchicalFlow(t *testing.T) {
	data := testData(t)
	train, test := data.SplitIndices(0.5, 1)
	pred := NewPredictor(nil)
	hpred := NewHierPredictor(nil)
	if err := pred.Train(data, train); err != nil {
		t.Fatal(err)
	}
	if err := hpred.Train(data, train); err != nil {
		t.Fatal(err)
	}
	opt := &optimize.LBFGSB{Tol: 1e-6}
	rng := rand.New(rand.NewSource(5))
	pb := data.Problems[test[0]]
	res, err := Hierarchical(pb, 3, opt, pred, hpred, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalNFev != res.Level1.NFev+res.Level2.NFev+res.Level3.NFev {
		t.Error("TotalNFev mismatch")
	}
	if res.AR() <= 0 || res.AR() > 1+1e-9 {
		t.Errorf("AR = %v", res.AR())
	}
	if res.Level3.Params.Depth() != 3 {
		t.Error("final depth wrong")
	}
	if _, err := Hierarchical(pb, 2, opt, pred, hpred, rng); err == nil {
		t.Error("hierarchical target depth 2 accepted")
	}
}

func TestHierPredictorRequiresDepth3(t *testing.T) {
	cfg := DataGenConfig{NumGraphs: 3, Nodes: 4, EdgeProb: 0.9, MaxDepth: 2, Starts: 1, Seed: 1}
	data, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := NewHierPredictor(nil).Train(data, []int{0, 1, 2}); err == nil {
		t.Error("hierarchical training on depth-2 data accepted")
	}
}

func TestPredictorWithOtherModels(t *testing.T) {
	data := testData(t)
	train, _ := data.SplitIndices(0.5, 1)
	factories := map[string]func() ml.Regressor{
		"LM":    func() ml.Regressor { return &ml.Linear{} },
		"RTREE": func() ml.Regressor { return &ml.Tree{} },
		"RSVM":  func() ml.Regressor { return &ml.SVR{} },
	}
	for name, f := range factories {
		pred := NewPredictor(f)
		if err := pred.Train(data, train); err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		p1 := data.Record(0, 1).Params
		got, err := pred.Predict(FeaturesFromParams(p1, 2))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if err := got.Validate(true); err != nil {
			t.Errorf("%s: prediction out of domain: %v", name, err)
		}
	}
}

// Dataset-level pattern check (the paper's Fig. 2 observation as an
// invariant): over the generated ensemble, γ grows and β shrinks
// between stages in the clear majority of transitions.
func TestDatasetParameterPatterns(t *testing.T) {
	data := testData(t)
	gammaUp, betaDown, total := 0, 0, 0
	for g := range data.Problems {
		for d := 2; d <= data.Config.MaxDepth; d++ {
			params := data.Record(g, d).Params
			for i := 1; i < d; i++ {
				total++
				if params.Gamma[i] >= params.Gamma[i-1]-1e-9 {
					gammaUp++
				}
				if params.Beta[i] <= params.Beta[i-1]+1e-9 {
					betaDown++
				}
			}
		}
	}
	if float64(gammaUp) < 0.7*float64(total) {
		t.Errorf("γ increasing in only %d/%d transitions", gammaUp, total)
	}
	if float64(betaDown) < 0.7*float64(total) {
		t.Errorf("β decreasing in only %d/%d transitions", betaDown, total)
	}
}

// The depth-1 features must correlate strongly across the ensemble —
// the Sec. III-B r = 0.92 observation as an invariant.
func TestDatasetP1Correlation(t *testing.T) {
	data := testData(t)
	var g1, b1 []float64
	for g := range data.Problems {
		p1 := data.Record(g, 1).Params
		g1 = append(g1, p1.Gamma[0])
		b1 = append(b1, p1.Beta[0])
	}
	if r := stats.Pearson(g1, b1); r < 0.5 {
		t.Errorf("r(γ1, β1) = %v, want strongly positive", r)
	}
}

// Seeds replace random starts one-for-one, keeping the total start
// count (and thus the FC accounting) unchanged.
func TestOptimizeDepthSeedAccounting(t *testing.T) {
	data := testData(t)
	pb := data.Problems[0]
	opt := &optimize.LBFGSB{Tol: 1e-6}
	seed := qaoa.Params{Gamma: []float64{0.4, 0.8}, Beta: []float64{0.5, 0.25}}

	// Same RNG stream: with a seed leg, the first random start is
	// replaced, so the run count is identical but the trajectories differ.
	recPlain := OptimizeDepth(pb, 0, 2, 3, opt, rand.New(rand.NewSource(9)))
	recSeeded := OptimizeDepth(pb, 0, 2, 3, opt, rand.New(rand.NewSource(9)), seed)
	if recPlain.NFev <= 0 || recSeeded.NFev <= 0 {
		t.Fatal("no evaluations")
	}
	// The seeded run must be at least as good as the plain run when the
	// seed is a strong initialization (it explores a superset quality-
	// wise only statistically; assert best-F sanity instead).
	if recSeeded.AR <= 0 || recSeeded.AR > 1+1e-9 {
		t.Errorf("seeded AR = %v", recSeeded.AR)
	}
	// With starts=1 and a seed, the single leg is the seed itself:
	// deterministic regardless of the RNG.
	a := OptimizeDepth(pb, 0, 2, 1, opt, rand.New(rand.NewSource(1)), seed)
	b := OptimizeDepth(pb, 0, 2, 1, opt, rand.New(rand.NewSource(2)), seed)
	if a.NegF != b.NegF || a.NFev != b.NFev {
		t.Error("seed-only run not deterministic across RNGs")
	}
}

// Out-of-domain seeds are clipped into the optimization box rather than
// crashing the optimizer.
func TestOptimizeDepthClipsSeeds(t *testing.T) {
	data := testData(t)
	pb := data.Problems[1]
	opt := &optimize.LBFGSB{Tol: 1e-6}
	wild := qaoa.Params{Gamma: []float64{99, -7}, Beta: []float64{42, -1}}
	rec := OptimizeDepth(pb, 1, 2, 2, opt, rand.New(rand.NewSource(3)), wild)
	if err := rec.Params.Validate(true); err != nil {
		t.Errorf("result out of domain: %v", err)
	}
}
