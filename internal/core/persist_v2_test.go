package core

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"qaoaml/internal/problem"
)

// Every non-MaxCut family must round-trip through schema v2: identical
// records, identical canonical fingerprints (the instance really is
// the same one), identical exact optima.
func TestSaveLoadV2AllFamilies(t *testing.T) {
	for _, family := range problem.Families() {
		if family == problem.FamilyMaxCut {
			continue // v1 path, covered by TestSaveLoadRoundTrip
		}
		t.Run(family, func(t *testing.T) {
			data, err := Generate(DataGenConfig{
				NumGraphs: 3, Nodes: 6, EdgeProb: 0.5,
				MaxDepth: 2, Starts: 1, Tol: 1e-6, Seed: 11,
				Family: family,
			})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := data.Save(&buf); err != nil {
				t.Fatal(err)
			}
			var probe struct {
				Version int               `json:"version"`
				Specs   []json.RawMessage `json:"specs"`
			}
			if err := json.Unmarshal(buf.Bytes(), &probe); err != nil {
				t.Fatal(err)
			}
			if probe.Version != 2 || len(probe.Specs) != 3 {
				t.Fatalf("wrote version %d with %d specs; want 2 with 3", probe.Version, len(probe.Specs))
			}

			loaded, err := Load(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if loaded.Config != persistedConfig(data.Config) {
				t.Errorf("config mismatch: %+v vs %+v", loaded.Config, data.Config)
			}
			if !reflect.DeepEqual(loaded.Records, data.Records) {
				t.Fatal("records differ after v2 round trip")
			}
			for i := range data.Problems {
				wantFP, err := data.Problems[i].Spec.Fingerprint()
				if err != nil {
					t.Fatal(err)
				}
				gotFP, err := loaded.Problems[i].Spec.Fingerprint()
				if err != nil {
					t.Fatal(err)
				}
				if gotFP != wantFP {
					t.Fatalf("instance %d: fingerprint changed across round trip: %s -> %s", i, wantFP, gotFP)
				}
				if loaded.Problems[i].OptValue != data.Problems[i].OptValue {
					t.Fatalf("instance %d: exact optimum differs after round trip", i)
				}
				if loaded.Problems[i].MinScore != data.Problems[i].MinScore {
					t.Fatalf("instance %d: score floor differs after round trip", i)
				}
			}
		})
	}
}

// MaxCut datasets must keep writing schema v1 — the byte format every
// existing dataset file uses — with no v2 fields leaking in.
func TestSaveMaxCutStaysV1(t *testing.T) {
	data, err := Generate(DataGenConfig{
		NumGraphs: 2, Nodes: 6, EdgeProb: 0.5,
		MaxDepth: 2, Starts: 1, Tol: 1e-6, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := data.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &probe); err != nil {
		t.Fatal(err)
	}
	if string(probe["version"]) != "1" {
		t.Fatalf("maxcut dataset wrote version %s, want 1", probe["version"])
	}
	if _, leaked := probe["specs"]; leaked {
		t.Fatal("v2 specs field leaked into a v1 maxcut file")
	}
	if _, ok := probe["graphs"]; !ok {
		t.Fatal("v1 graphs field missing")
	}
	if _, err := Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
}

// A v2 file with mismatched specs/records is rejected, as is an
// unknown family tag.
func TestLoadV2Rejects(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte(`{"version": 2, "specs": [{"family": "partition", "numbers": [1,2,3,4]}], "records": []}`))); err == nil {
		t.Error("mismatched specs/records accepted")
	}
	if _, err := Load(bytes.NewReader([]byte(`{"version": 2, "specs": [{"family": "nope"}], "records": [[]]}`))); err == nil {
		t.Error("unknown family accepted")
	}
}
