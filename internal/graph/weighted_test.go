package graph

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestAddWeightedEdge(t *testing.T) {
	g := New(3)
	if err := g.AddWeightedEdge(0, 1, 2.5); err != nil {
		t.Fatal(err)
	}
	if !g.Weighted() {
		t.Error("graph with weight 2.5 not reported weighted")
	}
	if g.IntegerWeighted() {
		t.Error("2.5 reported as integer weight")
	}
	if got := g.Weights(); len(got) != 1 || got[0] != 2.5 {
		t.Errorf("Weights = %v", got)
	}
	if got := g.TotalWeight(); got != 2.5 {
		t.Errorf("TotalWeight = %v", got)
	}
}

func TestAddWeightedEdgeRejectsBadWeights(t *testing.T) {
	g := New(3)
	for _, w := range []float64{0, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := g.AddWeightedEdge(0, 1, w); err == nil {
			t.Errorf("weight %v accepted", w)
		}
	}
}

func TestUnweightedDefaults(t *testing.T) {
	g := Path(3)
	if g.Weighted() {
		t.Error("unit-weight graph reported weighted")
	}
	if !g.IntegerWeighted() {
		t.Error("unit weights not integer")
	}
	if g.TotalWeight() != 2 {
		t.Errorf("TotalWeight = %v, want 2", g.TotalWeight())
	}
}

func TestWeightedCutValueMatchesUnweightedOnUnitWeights(t *testing.T) {
	f := func(seed int64, a uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := ErdosRenyi(8, 0.5, rng)
		return g.WeightedCutValue(uint64(a)) == float64(g.CutValue(uint64(a)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestWeightedMaxCutKnown(t *testing.T) {
	// Triangle with one heavy edge: optimum cuts the heavy edge plus one
	// light edge.
	g := New(3)
	mustAddW(t, g, 0, 1, 10)
	mustAddW(t, g, 1, 2, 1)
	mustAddW(t, g, 0, 2, 1)
	v, assign := g.WeightedMaxCut()
	if v != 11 {
		t.Errorf("weighted MaxCut = %v, want 11", v)
	}
	if got := g.WeightedCutValue(assign); got != v {
		t.Errorf("assignment achieves %v, reported %v", got, v)
	}
}

func TestWeightedMaxCutNegativeWeights(t *testing.T) {
	// A negative edge should stay uncut at the optimum.
	g := New(3)
	mustAddW(t, g, 0, 1, 5)
	mustAddW(t, g, 1, 2, -3)
	v, assign := g.WeightedMaxCut()
	if v != 5 {
		t.Errorf("weighted MaxCut = %v, want 5", v)
	}
	if (assign>>1)&1 != (assign>>2)&1 {
		t.Error("negative edge cut at optimum")
	}
}

func TestWeightedCutTable(t *testing.T) {
	g := New(2)
	mustAddW(t, g, 0, 1, 3.5)
	table := g.WeightedCutTable()
	want := []float64{0, 3.5, 3.5, 0}
	for i := range want {
		if table[i] != want[i] {
			t.Errorf("table = %v, want %v", table, want)
			break
		}
	}
}

func TestWeightedCloneAndString(t *testing.T) {
	g := New(2)
	mustAddW(t, g, 0, 1, 2)
	c := g.Clone()
	if !c.Weighted() || c.TotalWeight() != 2 {
		t.Error("Clone dropped weights")
	}
	if s := g.String(); !strings.Contains(s, "(0,1):2") {
		t.Errorf("String = %q", s)
	}
	if s := Path(2).String(); strings.Contains(s, ":1") {
		t.Errorf("unit-weight String shows weights: %q", s)
	}
}

// Property: complement invariance holds for weighted cuts too.
func TestWeightedCutComplementInvariance(t *testing.T) {
	f := func(seed int64, a uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New(8)
		for u := 0; u < 8; u++ {
			for v := u + 1; v < 8; v++ {
				if rng.Float64() < 0.4 {
					if err := g.AddWeightedEdge(u, v, rng.NormFloat64()+2); err != nil {
						return false
					}
				}
			}
		}
		assign := uint64(a)
		comp := ^assign & 0xFF
		return math.Abs(g.WeightedCutValue(assign)-g.WeightedCutValue(comp)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func mustAddW(t *testing.T, g *Graph, u, v int, w float64) {
	t.Helper()
	if err := g.AddWeightedEdge(u, v, w); err != nil {
		t.Fatal(err)
	}
}

func TestStar(t *testing.T) {
	g := Star(5)
	if g.NumEdges() != 4 || g.Degree(0) != 4 {
		t.Errorf("star: m=%d deg0=%d", g.NumEdges(), g.Degree(0))
	}
	// Star is bipartite: MaxCut cuts every edge.
	if got := g.MaxCut().Value; got != 4 {
		t.Errorf("star MaxCut = %d, want 4", got)
	}
}

func TestCompleteBipartite(t *testing.T) {
	g := CompleteBipartite(3, 4)
	if g.N != 7 || g.NumEdges() != 12 {
		t.Fatalf("K(3,4): n=%d m=%d", g.N, g.NumEdges())
	}
	if got := g.MaxCut().Value; got != 12 {
		t.Errorf("K(3,4) MaxCut = %d, want 12 (bipartite)", got)
	}
	if g.Triangles() != 0 {
		t.Error("bipartite graph has triangles")
	}
}

func TestGrid2D(t *testing.T) {
	g := Grid2D(3, 4)
	if g.N != 12 {
		t.Fatalf("grid n = %d", g.N)
	}
	// Edges: 3 rows × 3 horizontal + 2 × 4 vertical = 9 + 8 = 17.
	if g.NumEdges() != 17 {
		t.Errorf("grid m = %d, want 17", g.NumEdges())
	}
	if !g.Connected() {
		t.Error("grid not connected")
	}
	// Grids are bipartite.
	if got := g.MaxCut().Value; got != 17 {
		t.Errorf("grid MaxCut = %d, want 17", got)
	}
}

func TestBarbell(t *testing.T) {
	g := Barbell(4)
	if g.N != 8 {
		t.Fatalf("barbell n = %d", g.N)
	}
	// Two K4 (6 edges each) + bridge.
	if g.NumEdges() != 13 {
		t.Errorf("barbell m = %d, want 13", g.NumEdges())
	}
	if !g.Connected() {
		t.Error("barbell not connected")
	}
	// Each K4 contributes C(4,3) = 4 triangles.
	if got := g.Triangles(); got != 8 {
		t.Errorf("barbell triangles = %d, want 8", got)
	}
}

func TestTriangles(t *testing.T) {
	cases := []struct {
		g    *Graph
		want int
	}{
		{Cycle(3), 1},
		{Cycle(5), 0},
		{Complete(4), 4},
		{Complete(5), 10},
		{Path(4), 0},
		{Star(6), 0},
	}
	for i, c := range cases {
		if got := c.g.Triangles(); got != c.want {
			t.Errorf("case %d: triangles = %d, want %d", i, got, c.want)
		}
	}
}

func TestGeneratorPanics(t *testing.T) {
	for i, f := range []func(){
		func() { Star(1) },
		func() { CompleteBipartite(0, 3) },
		func() { Grid2D(0, 2) },
		func() { Barbell(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestAdjacencyAndLaplacian(t *testing.T) {
	g := Path(3) // 0-1-2
	a := g.AdjacencyMatrix()
	if a.At(0, 1) != 1 || a.At(1, 0) != 1 || a.At(0, 2) != 0 {
		t.Errorf("adjacency:\n%v", a)
	}
	l := g.LaplacianMatrix()
	// Row sums of a Laplacian are zero.
	for i := 0; i < 3; i++ {
		s := 0.0
		for j := 0; j < 3; j++ {
			s += l.At(i, j)
		}
		if math.Abs(s) > 1e-12 {
			t.Errorf("Laplacian row %d sums to %v", i, s)
		}
	}
	if l.At(1, 1) != 2 || l.At(0, 0) != 1 {
		t.Errorf("Laplacian degrees wrong:\n%v", l)
	}
}

func TestAlgebraicConnectivity(t *testing.T) {
	// Connected graph: Fiedler value > 0. Known: λ2(K_n) = n.
	kn := Complete(5)
	got, err := kn.AlgebraicConnectivity()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-5) > 1e-8 {
		t.Errorf("λ2(K5) = %v, want 5", got)
	}
	// Known: λ2(P2) = 2 (Laplacian [[1,-1],[-1,1]]).
	p2 := Path(2)
	got, err = p2.AlgebraicConnectivity()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2) > 1e-8 {
		t.Errorf("λ2(P2) = %v, want 2", got)
	}
	// Disconnected graph: Fiedler value 0.
	disc := New(4)
	mustAddW(t, disc, 0, 1, 1)
	mustAddW(t, disc, 2, 3, 1)
	got, err = disc.AlgebraicConnectivity()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got) > 1e-8 {
		t.Errorf("λ2 of disconnected graph = %v, want 0", got)
	}
	if _, err := New(1).AlgebraicConnectivity(); err == nil {
		t.Error("single-vertex graph accepted")
	}
}

// Fiedler value sign matches Connected() across random graphs.
func TestFiedlerMatchesConnectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	for trial := 0; trial < 30; trial++ {
		g := ErdosRenyi(7, 0.25, rng)
		if g.NumEdges() == 0 {
			continue
		}
		lam2, err := g.AlgebraicConnectivity()
		if err != nil {
			t.Fatal(err)
		}
		if g.Connected() != (lam2 > 1e-8) {
			t.Fatalf("trial %d: Connected=%v but λ2=%v", trial, g.Connected(), lam2)
		}
	}
}
