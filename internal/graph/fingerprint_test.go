package graph

import (
	"math/rand"
	"testing"
)

func TestFingerprintInsertionOrderInvariant(t *testing.T) {
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}, {1, 3}}
	build := func(order []int) *Graph {
		g := New(4)
		for _, i := range order {
			if err := g.AddEdge(edges[i][0], edges[i][1]); err != nil {
				t.Fatal(err)
			}
		}
		return g
	}
	want := build([]int{0, 1, 2, 3, 4}).Fingerprint()
	if want == "" {
		t.Fatal("empty fingerprint")
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		order := rng.Perm(len(edges))
		if got := build(order).Fingerprint(); got != want {
			t.Fatalf("permuted insertion order %v changed fingerprint: %s != %s", order, got, want)
		}
	}
}

func TestFingerprintWeightOrderInvariant(t *testing.T) {
	type we struct {
		u, v int
		w    float64
	}
	edges := []we{{0, 1, 2.5}, {1, 2, -1}, {0, 2, 1}, {2, 3, 0.125}}
	build := func(order []int) *Graph {
		g := New(4)
		for _, i := range order {
			if err := g.AddWeightedEdge(edges[i].u, edges[i].v, edges[i].w); err != nil {
				t.Fatal(err)
			}
		}
		return g
	}
	want := build([]int{0, 1, 2, 3}).Fingerprint()
	if got := build([]int{3, 1, 0, 2}).Fingerprint(); got != want {
		t.Fatalf("weighted insertion order changed fingerprint: %s != %s", got, want)
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	base := New(4)
	for _, e := range [][2]int{{0, 1}, {1, 2}} {
		if err := base.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	fp := base.Fingerprint()

	// Different vertex count, same edges.
	bigger := New(5)
	for _, e := range [][2]int{{0, 1}, {1, 2}} {
		if err := bigger.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if bigger.Fingerprint() == fp {
		t.Error("vertex count not hashed")
	}

	// Extra edge.
	more := base.Clone()
	if err := more.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	if more.Fingerprint() == fp {
		t.Error("edge set not hashed")
	}

	// Same edges, one weight changed.
	w := New(4)
	if err := w.AddWeightedEdge(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := w.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if w.Fingerprint() == fp {
		t.Error("weights not hashed")
	}

	// Relabeled vertices are deliberately distinct.
	relabel := New(4)
	for _, e := range [][2]int{{2, 3}, {1, 2}} {
		if err := relabel.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if relabel.Fingerprint() == fp {
		t.Error("relabeled graph should not collide")
	}
}

// TestFingerprintNoCollisionsRandomEnsemble hashes a family of random
// graphs and checks that distinct edge sets never collide (and equal
// edge sets always agree).
func TestFingerprintNoCollisionsRandomEnsemble(t *testing.T) {
	seen := make(map[string]string) // fingerprint → canonical edge string
	for seed := int64(0); seed < 200; seed++ {
		g := ErdosRenyi(8, 0.5, rand.New(rand.NewSource(seed)))
		if g.NumEdges() == 0 {
			continue
		}
		canon := g.String() // Edges() insertion order is generation order; String is canonical enough combined with N
		fp := g.Fingerprint()
		if prev, ok := seen[fp]; ok {
			if prev != canon {
				t.Fatalf("collision: %q and %q share fingerprint %s", prev, canon, fp)
			}
			continue
		}
		seen[fp] = canon
	}
	if len(seen) < 100 {
		t.Fatalf("ensemble too degenerate: only %d distinct graphs", len(seen))
	}
}
