package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sort"
)

// Fingerprint returns a deterministic canonical hash of the graph: the
// SHA-256 of the vertex count followed by the (u, v, w) edge triples in
// sorted (u, v) order, with weights encoded as IEEE-754 bits. Two graphs
// have equal fingerprints iff they have the same vertex count and the
// same weighted edge set, regardless of edge insertion order — which
// makes the fingerprint a safe cache key for solve results (see
// internal/server): an instance hashes to the same key however the
// client happened to serialize its edge list.
//
// The hash is NOT invariant under vertex relabeling: MaxCut assignments
// are reported per vertex index, so isomorphic-but-relabeled instances
// are deliberately distinct.
func (g *Graph) Fingerprint() string {
	// Sort edge indices by (U, V); edges are stored with U < V, so this
	// is a total order over the edge set.
	idx := make([]int, len(g.edges))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ea, eb := g.edges[idx[a]], g.edges[idx[b]]
		if ea.U != eb.U {
			return ea.U < eb.U
		}
		return ea.V < eb.V
	})

	h := sha256.New()
	var buf [8 * 3]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(g.N))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(len(g.edges)))
	h.Write(buf[:16])
	for _, i := range idx {
		e := g.edges[i]
		binary.LittleEndian.PutUint64(buf[0:8], uint64(e.U))
		binary.LittleEndian.PutUint64(buf[8:16], uint64(e.V))
		binary.LittleEndian.PutUint64(buf[16:24], math.Float64bits(g.weights[i]))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}
