package graph

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestAddEdgeBasics(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge not symmetric")
	}
	if g.HasEdge(0, 2) {
		t.Error("phantom edge")
	}
	if err := g.AddEdge(1, 0); err == nil {
		t.Error("duplicate edge accepted")
	}
	if err := g.AddEdge(2, 2); err == nil {
		t.Error("self-loop accepted")
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
}

func TestEdgeNormalization(t *testing.T) {
	g := New(4)
	if err := g.AddEdge(3, 1); err != nil {
		t.Fatal(err)
	}
	es := g.Edges()
	if len(es) != 1 || es[0] != (Edge{U: 1, V: 3}) {
		t.Errorf("Edges = %v", es)
	}
}

func TestDegreeAndNeighbors(t *testing.T) {
	g := Path(4) // 0-1-2-3
	if g.Degree(0) != 1 || g.Degree(1) != 2 {
		t.Errorf("degrees: %v", g.DegreeSequence())
	}
	if got := g.Neighbors(1); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Neighbors(1) = %v", got)
	}
	want := []int{1, 1, 2, 2}
	for i, d := range g.DegreeSequence() {
		if d != want[i] {
			t.Errorf("DegreeSequence = %v", g.DegreeSequence())
			break
		}
	}
}

func TestConnected(t *testing.T) {
	g := Path(4)
	if !g.Connected() {
		t.Error("path should be connected")
	}
	h := New(4)
	mustAdd(h, 0, 1)
	mustAdd(h, 2, 3)
	if h.Connected() {
		t.Error("two components reported connected")
	}
	if !New(0).Connected() || !New(1).Connected() {
		t.Error("trivial graphs should be connected")
	}
}

func TestCutValue(t *testing.T) {
	g := New(2)
	mustAdd(g, 0, 1)
	if g.CutValue(0b00) != 0 || g.CutValue(0b11) != 0 {
		t.Error("same-side cut should be 0")
	}
	if g.CutValue(0b01) != 1 || g.CutValue(0b10) != 1 {
		t.Error("crossing cut should be 1")
	}
}

func TestMaxCutKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int
	}{
		{"single edge", Path(2), 1},
		{"path4", Path(4), 3},
		{"triangle", Cycle(3), 2},
		{"C4", Cycle(4), 4},
		{"C5", Cycle(5), 4},
		{"K4", Complete(4), 4},
		{"K5", Complete(5), 6},
		{"empty", New(5), 0},
	}
	for _, c := range cases {
		got := c.g.MaxCut()
		if got.Value != c.want {
			t.Errorf("%s: MaxCut = %d, want %d", c.name, got.Value, c.want)
		}
		if c.g.CutValue(got.Assign) != got.Value {
			t.Errorf("%s: reported assignment does not achieve reported value", c.name)
		}
	}
}

func TestCutTableMatchesCutValue(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := ErdosRenyi(6, 0.5, rng)
	table := g.CutTable()
	if len(table) != 64 {
		t.Fatalf("table length = %d", len(table))
	}
	for a := uint64(0); a < 64; a++ {
		if int(table[a]) != g.CutValue(a) {
			t.Fatalf("table[%d] = %v != CutValue %d", a, table[a], g.CutValue(a))
		}
	}
}

// Property: cut value is invariant under complementing the assignment.
func TestCutComplementInvariance(t *testing.T) {
	f := func(seed int64, a uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := ErdosRenyi(8, 0.5, rng)
		assign := uint64(a)
		comp := ^assign & 0xFF
		return g.CutValue(assign) == g.CutValue(comp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: MaxCut is at least half the edges (probabilistic bound holds
// deterministically for the greedy/optimal cut) and at most all edges.
func TestMaxCutBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := ErdosRenyi(7, 0.4, rng)
		mc := g.MaxCut().Value
		return 2*mc >= g.NumEdges() && mc <= g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMaxCutBipartiteIsAllEdges(t *testing.T) {
	// Even cycles are bipartite: optimal cut severs every edge.
	for _, n := range []int{4, 6, 8} {
		g := Cycle(n)
		if got := g.MaxCut().Value; got != n {
			t.Errorf("C%d MaxCut = %d, want %d", n, got, n)
		}
	}
}

func TestErdosRenyiEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if g := ErdosRenyi(6, 0, rng); g.NumEdges() != 0 {
		t.Error("p=0 graph has edges")
	}
	if g := ErdosRenyi(6, 1, rng); g.NumEdges() != 15 {
		t.Errorf("p=1 graph has %d edges, want 15", g.NumEdges())
	}
}

func TestErdosRenyiEdgeDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	total := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		total += ErdosRenyi(8, 0.5, rng).NumEdges()
	}
	mean := float64(total) / trials
	// Expected 14 edges; allow generous slack for randomness.
	if mean < 12 || mean > 16 {
		t.Errorf("mean edges = %v, want ~14", mean)
	}
}

func TestErdosRenyiConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		g := ErdosRenyiConnected(8, 0.5, rng)
		if !g.Connected() || g.NumEdges() == 0 {
			t.Fatal("ErdosRenyiConnected returned disconnected/empty graph")
		}
	}
}

func TestRandomRegular(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 20; i++ {
		g := RandomRegular(8, 3, rng)
		for v := 0; v < 8; v++ {
			if g.Degree(v) != 3 {
				t.Fatalf("vertex %d degree %d, want 3", v, g.Degree(v))
			}
		}
	}
}

func TestRandomRegularRejectsImpossible(t *testing.T) {
	for _, c := range []struct{ n, k int }{{5, 3}, {4, 4}, {3, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RandomRegular(%d,%d) should panic", c.n, c.k)
				}
			}()
			RandomRegular(c.n, c.k, rand.New(rand.NewSource(0)))
		}()
	}
}

func TestRandomRegularZeroK(t *testing.T) {
	g := RandomRegular(6, 0, rand.New(rand.NewSource(0)))
	if g.NumEdges() != 0 {
		t.Error("0-regular graph has edges")
	}
}

func TestCloneIndependent(t *testing.T) {
	g := Cycle(4)
	c := g.Clone()
	mustAdd(c, 0, 2)
	if g.HasEdge(0, 2) {
		t.Error("Clone shares edge storage")
	}
	if c.NumEdges() != g.NumEdges()+1 {
		t.Error("Clone lost edges")
	}
}

func TestStringAndDOT(t *testing.T) {
	g := Path(3)
	if s := g.String(); !strings.Contains(s, "n=3") || !strings.Contains(s, "(0,1)") {
		t.Errorf("String = %q", s)
	}
	dot := g.DOT("p3")
	if !strings.Contains(dot, "graph p3") || !strings.Contains(dot, "0 -- 1;") {
		t.Errorf("DOT = %q", dot)
	}
}

func TestDeterministicGeneration(t *testing.T) {
	g1 := ErdosRenyi(8, 0.5, rand.New(rand.NewSource(99)))
	g2 := ErdosRenyi(8, 0.5, rand.New(rand.NewSource(99)))
	if g1.String() != g2.String() {
		t.Error("same seed produced different graphs")
	}
}
