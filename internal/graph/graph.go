// Package graph provides the undirected-graph substrate for the QAOA
// MaxCut reproduction: graph construction, the random ensembles used by
// the paper (Erdős–Rényi G(n, p) and random k-regular graphs), cut
// evaluation, and exact brute-force MaxCut for the small (n = 8)
// instances the paper studies. It replaces the NetworkX usage in the
// original stack.
package graph

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"qaoaml/internal/linalg"
)

// Edge is an undirected edge between vertices U < V.
type Edge struct {
	U, V int
}

// Graph is a simple undirected graph on vertices 0..N-1 with optional
// positive or negative edge weights (unweighted edges have weight 1).
type Graph struct {
	N       int
	edges   []Edge
	weights []float64 // parallel to edges
	adj     []map[int]bool
}

// New returns an empty graph on n vertices. It panics for n < 0.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	g := &Graph{N: n, adj: make([]map[int]bool, n)}
	for i := range g.adj {
		g.adj[i] = make(map[int]bool)
	}
	return g
}

// AddEdge inserts the undirected edge (u, v) with weight 1. Self-loops
// and duplicate edges are rejected with an error; out-of-range vertices
// panic.
func (g *Graph) AddEdge(u, v int) error { return g.AddWeightedEdge(u, v, 1) }

// AddWeightedEdge inserts the undirected edge (u, v) with the given
// weight. Zero, NaN and infinite weights are rejected.
func (g *Graph) AddWeightedEdge(u, v int, w float64) error {
	if u < 0 || u >= g.N || v < 0 || v >= g.N {
		panic(fmt.Sprintf("graph: vertex out of range: (%d,%d) in graph of %d", u, v, g.N))
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	if g.adj[u][v] {
		return fmt.Errorf("graph: duplicate edge (%d,%d)", u, v)
	}
	if w == 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		return fmt.Errorf("graph: invalid edge weight %v on (%d,%d)", w, u, v)
	}
	if u > v {
		u, v = v, u
	}
	g.adj[u][v] = true
	g.adj[v][u] = true
	g.edges = append(g.edges, Edge{U: u, V: v})
	g.weights = append(g.weights, w)
	return nil
}

// Weighted reports whether any edge has weight ≠ 1.
func (g *Graph) Weighted() bool {
	for _, w := range g.weights {
		if w != 1 {
			return true
		}
	}
	return false
}

// IntegerWeighted reports whether every edge weight is an integer
// (relevant for the 2π-periodicity of QAOA phase separators).
func (g *Graph) IntegerWeighted() bool {
	for _, w := range g.weights {
		if w != math.Trunc(w) {
			return false
		}
	}
	return true
}

// Weights returns a copy of the edge weights in Edges() order.
func (g *Graph) Weights() []float64 {
	return append([]float64(nil), g.weights...)
}

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() float64 {
	t := 0.0
	for _, w := range g.weights {
		t += w
	}
	return t
}

// HasEdge reports whether (u, v) is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.N || v < 0 || v >= g.N {
		return false
	}
	return g.adj[u][v]
}

// Edges returns a copy of the edge list with U < V in each edge.
func (g *Graph) Edges() []Edge {
	return append([]Edge(nil), g.edges...)
}

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// DegreeSequence returns the sorted (ascending) degree sequence.
func (g *Graph) DegreeSequence() []int {
	ds := make([]int, g.N)
	for i := range ds {
		ds[i] = g.Degree(i)
	}
	sort.Ints(ds)
	return ds
}

// Neighbors returns the sorted neighbor list of v.
func (g *Graph) Neighbors(v int) []int {
	ns := make([]int, 0, len(g.adj[v]))
	for u := range g.adj[v] {
		ns = append(ns, u)
	}
	sort.Ints(ns)
	return ns
}

// Connected reports whether the graph is connected (true for n ≤ 1).
func (g *Graph) Connected() bool {
	if g.N <= 1 {
		return true
	}
	seen := make([]bool, g.N)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for u := range g.adj[v] {
			if !seen[u] {
				seen[u] = true
				count++
				stack = append(stack, u)
			}
		}
	}
	return count == g.N
}

// CutValue returns the number of edges crossing the cut described by
// assign, where assign bit i gives the side of vertex i. Weights are
// ignored; use WeightedCutValue for weighted graphs.
func (g *Graph) CutValue(assign uint64) int {
	cut := 0
	for _, e := range g.edges {
		if (assign>>uint(e.U))&1 != (assign>>uint(e.V))&1 {
			cut++
		}
	}
	return cut
}

// WeightedCutValue returns the total weight of edges crossing the cut.
func (g *Graph) WeightedCutValue(assign uint64) float64 {
	cut := 0.0
	for i, e := range g.edges {
		if (assign>>uint(e.U))&1 != (assign>>uint(e.V))&1 {
			cut += g.weights[i]
		}
	}
	return cut
}

// WeightedMaxCut solves weighted MaxCut exactly by enumeration (vertex
// 0 pinned, as in MaxCut). It panics for N > 30.
func (g *Graph) WeightedMaxCut() (value float64, assign uint64) {
	if g.N > 30 {
		panic("graph: WeightedMaxCut brute force limited to n <= 30")
	}
	var limit uint64 = 1
	if g.N > 0 {
		limit = 1 << uint(g.N-1)
	}
	value = math.Inf(-1)
	for a := uint64(0); a < limit; a++ {
		if v := g.WeightedCutValue(a); v > value {
			value, assign = v, a
		}
	}
	return value, assign
}

// WeightedCutTable returns the weighted cut value for all 2^N
// assignments — the QAOA cost diagonal for weighted MaxCut. It panics
// for N > 24.
func (g *Graph) WeightedCutTable() []float64 {
	if g.N > 24 {
		panic("graph: WeightedCutTable limited to n <= 24")
	}
	table := make([]float64, 1<<uint(g.N))
	for a := range table {
		table[a] = g.WeightedCutValue(uint64(a))
	}
	return table
}

// MaxCutResult holds the exact optimum of the MaxCut problem.
type MaxCutResult struct {
	Value  int    // number of edges in the optimal cut
	Assign uint64 // one optimal assignment (bit i = side of vertex i)
}

// MaxCut solves MaxCut exactly by enumerating all 2^(N-1) bipartitions
// (vertex 0 is pinned to side 0 since complementary assignments give the
// same cut). It panics for N > 30. For the paper's 8-node graphs this
// enumerates 128 assignments.
func (g *Graph) MaxCut() MaxCutResult {
	if g.N > 30 {
		panic("graph: MaxCut brute force limited to n <= 30")
	}
	best := MaxCutResult{}
	var limit uint64 = 1
	if g.N > 0 {
		limit = 1 << uint(g.N-1)
	}
	for a := uint64(0); a < limit; a++ {
		if v := g.CutValue(a); v > best.Value {
			best = MaxCutResult{Value: v, Assign: a}
		}
	}
	return best
}

// CutTable returns a table of cut values for all 2^N assignments,
// indexed by the assignment bits. This is the diagonal of the QAOA cost
// Hamiltonian in the computational basis. It panics for N > 24.
func (g *Graph) CutTable() []float64 {
	if g.N > 24 {
		panic("graph: CutTable limited to n <= 24")
	}
	table := make([]float64, 1<<uint(g.N))
	// Incremental: cut(a) differs from cut(a ^ (1<<v)) only on edges at v.
	// Simple direct evaluation is fast enough at n = 8; keep it clear.
	for a := range table {
		table[a] = float64(g.CutValue(uint64(a)))
	}
	return table
}

// Clone returns a deep copy of g, including edge weights.
func (g *Graph) Clone() *Graph {
	c := New(g.N)
	for i, e := range g.edges {
		if err := c.AddWeightedEdge(e.U, e.V, g.weights[i]); err != nil {
			panic("graph: clone of invalid graph: " + err.Error())
		}
	}
	return c
}

// String renders the graph as "n=<N> edges=[(u,v) ...]"; weighted edges
// render as "(u,v):w".
func (g *Graph) String() string {
	var b strings.Builder
	weighted := g.Weighted()
	fmt.Fprintf(&b, "n=%d edges=[", g.N)
	for i, e := range g.edges {
		if i > 0 {
			b.WriteByte(' ')
		}
		if weighted {
			fmt.Fprintf(&b, "(%d,%d):%g", e.U, e.V, g.weights[i])
		} else {
			fmt.Fprintf(&b, "(%d,%d)", e.U, e.V)
		}
	}
	b.WriteByte(']')
	return b.String()
}

// DOT renders the graph in Graphviz DOT format.
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %s {\n", name)
	for i := 0; i < g.N; i++ {
		fmt.Fprintf(&b, "  %d;\n", i)
	}
	for _, e := range g.edges {
		fmt.Fprintf(&b, "  %d -- %d;\n", e.U, e.V)
	}
	b.WriteString("}\n")
	return b.String()
}

// Triangles returns the number of triangles in the graph. Each
// triangle {a < b < c} is counted exactly once, via its lowest edge
// (a, b) and the common neighbor c > b.
func (g *Graph) Triangles() int {
	count := 0
	for _, e := range g.edges { // stored with U < V
		for w := range g.adj[e.U] {
			if w > e.V && g.adj[e.V][w] {
				count++
			}
		}
	}
	return count
}

// AdjacencyMatrix returns the (weighted) adjacency matrix of g.
func (g *Graph) AdjacencyMatrix() *linalg.Matrix {
	a := linalg.NewMatrix(g.N, g.N)
	for i, e := range g.edges {
		a.Set(e.U, e.V, g.weights[i])
		a.Set(e.V, e.U, g.weights[i])
	}
	return a
}

// LaplacianMatrix returns the (weighted) graph Laplacian L = D − A.
func (g *Graph) LaplacianMatrix() *linalg.Matrix {
	l := linalg.NewMatrix(g.N, g.N)
	for i, e := range g.edges {
		w := g.weights[i]
		l.Set(e.U, e.V, -w)
		l.Set(e.V, e.U, -w)
		l.Set(e.U, e.U, l.At(e.U, e.U)+w)
		l.Set(e.V, e.V, l.At(e.V, e.V)+w)
	}
	return l
}

// AlgebraicConnectivity returns the second-smallest Laplacian
// eigenvalue (Fiedler value): positive iff the graph is connected, and
// a classical upper-bound driver for MaxCut spectral relaxations.
func (g *Graph) AlgebraicConnectivity() (float64, error) {
	if g.N < 2 {
		return 0, fmt.Errorf("graph: algebraic connectivity needs n >= 2")
	}
	vals, _, err := linalg.EigenSym(g.LaplacianMatrix())
	if err != nil {
		return 0, err
	}
	return vals[1], nil
}
