package graph

import (
	"fmt"
	"math/rand"
)

// ErdosRenyi samples G(n, p): each of the n·(n-1)/2 possible edges is
// present independently with probability p. The paper draws its 330
// problem graphs from this ensemble with n = 8 and p = 0.5.
func ErdosRenyi(n int, p float64, rng *rand.Rand) *Graph {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("graph: edge probability %v out of [0,1]", p))
	}
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				mustAdd(g, u, v)
			}
		}
	}
	return g
}

// ErdosRenyiConnected samples G(n, p) conditioned on connectivity and at
// least one edge, by rejection. QAOA approximation ratios are undefined
// on empty graphs, and the paper's ensemble is effectively connected at
// n = 8, p = 0.5.
func ErdosRenyiConnected(n int, p float64, rng *rand.Rand) *Graph {
	for {
		g := ErdosRenyi(n, p, rng)
		if g.NumEdges() > 0 && g.Connected() {
			return g
		}
	}
}

// RandomRegular samples a uniform(ish) random k-regular graph on n
// vertices using the pairing/configuration model with restarts on
// collisions (self-loops or duplicate edges). It panics if n·k is odd or
// k ≥ n, which admit no simple k-regular graph.
func RandomRegular(n, k int, rng *rand.Rand) *Graph {
	if k < 0 || k >= n || n*k%2 != 0 {
		panic(fmt.Sprintf("graph: no simple %d-regular graph on %d vertices", k, n))
	}
	if k == 0 {
		return New(n)
	}
	for {
		if g, ok := tryPairing(n, k, rng); ok {
			return g
		}
	}
}

// tryPairing runs one round of the configuration model: n·k stubs are
// shuffled and paired; the attempt fails if any pair would create a
// self-loop or duplicate edge.
func tryPairing(n, k int, rng *rand.Rand) (*Graph, bool) {
	stubs := make([]int, 0, n*k)
	for v := 0; v < n; v++ {
		for i := 0; i < k; i++ {
			stubs = append(stubs, v)
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	g := New(n)
	for i := 0; i < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u == v || g.HasEdge(u, v) {
			return nil, false
		}
		mustAdd(g, u, v)
	}
	return g, true
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			mustAdd(g, u, v)
		}
	}
	return g
}

// Cycle returns the cycle graph C_n (n ≥ 3).
func Cycle(n int) *Graph {
	if n < 3 {
		panic("graph: cycle needs n >= 3")
	}
	g := New(n)
	for v := 0; v < n; v++ {
		mustAdd(g, v, (v+1)%n)
	}
	return g
}

// Path returns the path graph P_n.
func Path(n int) *Graph {
	g := New(n)
	for v := 0; v+1 < n; v++ {
		mustAdd(g, v, v+1)
	}
	return g
}

func mustAdd(g *Graph, u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic("graph: generator produced invalid edge: " + err.Error())
	}
}

// Star returns the star graph S_n: vertex 0 joined to 1..n-1.
func Star(n int) *Graph {
	if n < 2 {
		panic("graph: star needs n >= 2")
	}
	g := New(n)
	for v := 1; v < n; v++ {
		mustAdd(g, 0, v)
	}
	return g
}

// CompleteBipartite returns K_{a,b} with parts {0..a-1} and {a..a+b-1}.
func CompleteBipartite(a, b int) *Graph {
	if a < 1 || b < 1 {
		panic("graph: complete bipartite needs a, b >= 1")
	}
	g := New(a + b)
	for u := 0; u < a; u++ {
		for v := a; v < a+b; v++ {
			mustAdd(g, u, v)
		}
	}
	return g
}

// Grid2D returns the rows×cols grid graph, vertices numbered row-major.
func Grid2D(rows, cols int) *Graph {
	if rows < 1 || cols < 1 {
		panic("graph: grid needs rows, cols >= 1")
	}
	g := New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				mustAdd(g, id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				mustAdd(g, id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

// Barbell returns two K_m cliques joined by a single bridge edge
// (vertices 0..m-1 and m..2m-1, bridge (m-1, m)).
func Barbell(m int) *Graph {
	if m < 2 {
		panic("graph: barbell needs m >= 2")
	}
	g := New(2 * m)
	for u := 0; u < m; u++ {
		for v := u + 1; v < m; v++ {
			mustAdd(g, u, v)
			mustAdd(g, m+u, m+v)
		}
	}
	mustAdd(g, m-1, m)
	return g
}
