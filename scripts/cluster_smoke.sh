#!/usr/bin/env bash
# Fleet smoke test: boot a coordinator (with WAL) fronting two workers,
# drive mixed open-loop traffic through it with qaoaload (a fraction of
# requests followed over SSE), kill -9 one worker mid-run, and assert
# that every accepted job still completes — the dispatcher must fail
# the dead worker's jobs over to the survivor. CI runs this; it is also
# runnable locally: scripts/cluster_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."

COORD_PORT="${COORD_PORT:-18080}"
W1_PORT="${W1_PORT:-18081}"
W2_PORT="${W2_PORT:-18082}"
RATE="${RATE:-40}"
DURATION="${DURATION:-8s}"

workdir="$(mktemp -d)"
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build"
go build -o "$workdir/qaoad" ./cmd/qaoad
go build -o "$workdir/qaoaload" ./cmd/qaoaload

wait_healthy() { # url
  for _ in $(seq 1 100); do
    if curl -fsS "$1/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "FAIL: $1 never became healthy" >&2
  return 1
}

echo "== start 2 workers"
"$workdir/qaoad" -role=worker -addr "127.0.0.1:$W1_PORT" -workers 2 &
w1_pid=$!
pids+=("$w1_pid")
"$workdir/qaoad" -role=worker -addr "127.0.0.1:$W2_PORT" -workers 2 &
pids+=("$!")
wait_healthy "http://127.0.0.1:$W1_PORT"
wait_healthy "http://127.0.0.1:$W2_PORT"

echo "== start coordinator (WAL at $workdir/coord.wal)"
"$workdir/qaoad" -role=coordinator -addr "127.0.0.1:$COORD_PORT" \
  -peers "http://127.0.0.1:$W1_PORT,http://127.0.0.1:$W2_PORT" \
  -wal "$workdir/coord.wal" -cache -1 &
pids+=("$!")
wait_healthy "http://127.0.0.1:$COORD_PORT"

echo "== offer mixed traffic at $RATE rps for $DURATION (25% via SSE), killing worker 1 mid-run"
"$workdir/qaoaload" -addr "http://127.0.0.1:$COORD_PORT" \
  -rate "$RATE" -duration "$DURATION" -instances 12 -sizes 8 -depths 2,3 \
  -sse 0.25 -seed 7 -out "$workdir/BENCH_cluster.json" &
load_pid=$!
sleep 3
echo "== kill -9 worker 1 (pid $w1_pid)"
kill -9 "$w1_pid"
wait "$load_pid"

echo "== validate report schema"
"$workdir/qaoaload" -check "$workdir/BENCH_cluster.json"

echo "== assert every accepted job completed"
python3 - "$workdir/BENCH_cluster.json" <<'EOF'
import json, sys
e = json.load(open(sys.argv[1]))["entries"][0]
g = lambda k: e.get(k, 0)  # zero counters are omitted from the JSON
print(f"items={g('items')} done={g('done')} rejected={g('rejected')} "
      f"failed={g('failed')} sse_sampled={g('sse_sampled')}")
assert g("failed") == 0, f"{g('failed')} accepted jobs failed after worker kill"
assert g("done") + g("rejected") == g("items"), "accepted jobs went missing"
assert g("done") > 0, "no job completed at all"
assert g("sse_sampled") > 0, "-sse 0.25 sampled no streams"
EOF

echo "== coordinator still healthy after the kill"
curl -fsS "http://127.0.0.1:$COORD_PORT/healthz"
echo
echo "cluster smoke: OK"
